//! The discrete-time simulation engine.
//!
//! Fixed 1 s steps (configurable) with an event queue for the runtime
//! reconfigurations the paper highlights — VM boots, stops and live
//! migrations, fan-speed changes — plus per-server telemetry recording.

use crate::datacenter::Datacenter;
use crate::environment::AmbientModel;
use crate::error::SimError;
use crate::fan::FanSpeed;
use crate::fault::{FaultInjector, FaultPlan, FaultStats, ServerFaultState};
use crate::migration::{ActiveMigration, MigrationConfig};
use crate::server::{Server, ServerId};
use crate::shard;
use crate::telemetry::ServerTrace;
use crate::time::{SimDuration, SimTime};
use crate::vm::{Vm, VmId, VmSpec, VmState};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vmtherm_obs::{self as obs, names};
use vmtherm_units::{Celsius, Seconds, Watts};

/// Engine instrumentation; each handle is one relaxed-load branch when the
/// observability layer is disabled.
static OBS_STEPS: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_ENGINE_STEPS);
static OBS_EVENTS: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_ENGINE_EVENTS);
static OBS_STEP_NS: obs::LazyHistogram =
    obs::LazyHistogram::new(names::METRIC_ENGINE_STEP_NS, obs::Histogram::ns_buckets);

/// A reconfiguration applied at a scheduled time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// Boot a new VM on a server.
    BootVm {
        /// Target host.
        server: ServerId,
        /// VM to create.
        spec: VmSpec,
    },
    /// Stop (destroy) a VM wherever it runs.
    StopVm(VmId),
    /// Live-migrate a VM to a destination server.
    MigrateVm {
        /// VM to move.
        vm: VmId,
        /// Destination host.
        dest: ServerId,
    },
    /// Change a server's fan speed level.
    SetFanSpeed {
        /// Target server.
        server: ServerId,
        /// New level.
        speed: FanSpeed,
    },
    /// Replace the room's ambient model.
    SetAmbient(AmbientModel),
    /// Inject a fan failure on a server (`count` more fans stop).
    FailFans {
        /// Target server.
        server: ServerId,
        /// Additional fans to fail.
        count: u32,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A notification the engine emits when something happened, for observers
/// (the dynamic predictor re-anchors on these).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimEvent {
    /// A VM booted.
    VmBooted {
        /// The new VM.
        vm: VmId,
        /// Its host.
        server: ServerId,
    },
    /// A VM stopped.
    VmStopped {
        /// The stopped VM.
        vm: VmId,
        /// The host it ran on.
        server: ServerId,
    },
    /// A migration began (pre-copy start).
    MigrationStarted {
        /// The moving VM.
        vm: VmId,
        /// Source host.
        source: ServerId,
        /// Destination host.
        dest: ServerId,
    },
    /// A migration cut over; the VM now runs on `dest`.
    MigrationCompleted {
        /// The moved VM.
        vm: VmId,
        /// Former host.
        source: ServerId,
        /// New host.
        dest: ServerId,
    },
    /// A scheduled event failed to apply (e.g. placement rejected).
    EventFailed {
        /// Why it failed.
        error: SimError,
    },
}

/// The simulation: datacenter + environment + clock + events.
#[derive(Debug)]
pub struct Simulation {
    datacenter: Datacenter,
    ambient: AmbientModel,
    migration_config: MigrationConfig,
    clock: SimTime,
    dt: SimDuration,
    events: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    next_vm: u64,
    migrations: Vec<ActiveMigration>,
    traces: Vec<ServerTrace>,
    log: Vec<(SimTime, SimEvent)>,
    /// Parallel to `log`: `true` when the fault injector decided the
    /// monitoring plane never heard about that entry.
    log_lost: Vec<bool>,
    seed: u64,
    room_heat_kw: f64,
    /// Telemetry path faults, if a non-noop plan was installed.
    fault: Option<FaultInjector>,
    /// Per-server `(time_secs, reading_c)` samples as the monitoring plane
    /// receives them — possibly dropped, corrupted or re-timestamped.
    /// Only populated while an injector is installed; clean runs read the
    /// physics traces directly and pay nothing.
    delivered: Vec<Vec<(f64, f64)>>,
    /// Steps not yet flushed to the obs step counter; bounds per-step
    /// instrumentation cost to one branch plus an integer increment.
    obs_backlog: u32,
    /// Worker threads for the per-server physics phase (1 = serial).
    threads: usize,
    /// Shard-count override: 0 means one contiguous shard per thread.
    /// Exposed so tests can prove partition invariance directly.
    shards: usize,
}

/// Engine steps are counted (and one step latency sampled) once per this
/// many steps, so the hot loop pays an atomic and two clock reads only on
/// every 64th step.
const OBS_SAMPLE_EVERY: u32 = 64;

impl Simulation {
    /// Wraps a datacenter with a room model. `seed` drives VM workload
    /// decorrelation.
    #[must_use]
    pub fn new(datacenter: Datacenter, ambient: AmbientModel, seed: u64) -> Self {
        let traces = (0..datacenter.len()).map(|_| ServerTrace::new()).collect();
        Simulation {
            datacenter,
            ambient,
            migration_config: MigrationConfig::default(),
            clock: SimTime::ZERO,
            dt: SimDuration::from_secs(1),
            events: BinaryHeap::new(),
            seq: 0,
            next_vm: 0,
            migrations: Vec::new(),
            traces,
            log: Vec::new(),
            log_lost: Vec::new(),
            seed,
            room_heat_kw: 0.0,
            fault: None,
            delivered: Vec::new(),
            obs_backlog: 0,
            threads: 1,
            shards: 0,
        }
    }

    /// Steps the per-server physics phase on `threads` worker threads.
    ///
    /// Events, migrations, ambient and the room-heat reduction stay
    /// serial; only the embarrassingly parallel server loop is sharded
    /// (see [`crate::shard`]). End states are **bit-identical for every
    /// thread count** — per-server RNG streams derive from the seed
    /// plus the stable server index, each shard owns a disjoint
    /// contiguous server range, and every floating-point reduction runs
    /// serially in index order after the workers join.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// See [`Simulation::with_threads`]. Values are clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker threads used for the per-server physics phase.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the shard count independently of the thread count
    /// (0 = one contiguous shard per worker thread, the default).
    /// Results do not depend on this value; tests use it to prove
    /// partition invariance.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// Installs a telemetry fault plan. A no-op plan removes the injector
    /// entirely, so disabled faults are bit-identical to a clean run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for an out-of-domain plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        if plan.is_noop() {
            self.fault = None;
            return Ok(());
        }
        self.fault = Some(FaultInjector::new(plan)?);
        Ok(())
    }

    /// The faulted delivery stream for a server: `(time_secs, reading_c)`
    /// pairs as monitoring received them. `None` when no fault plan is
    /// installed — consumers then read the clean traces.
    #[must_use]
    pub fn delivered(&self, server: ServerId) -> Option<&[(f64, f64)]> {
        self.fault.as_ref()?;
        self.delivered.get(server.raw()).map(Vec::as_slice)
    }

    /// Whether the log entry at `index` was lost to the monitoring plane.
    #[must_use]
    pub fn log_entry_lost(&self, index: usize) -> bool {
        self.log_lost.get(index).copied().unwrap_or(false)
    }

    /// Total fault-injection counts so far (zeros without a plan).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .as_ref()
            .map(FaultInjector::total_stats)
            .unwrap_or_default()
    }

    /// Appends a log entry, asking the injector (when installed) whether
    /// reconfiguration notifications reach the monitoring plane.
    fn push_log(&mut self, at: SimTime, event: SimEvent) {
        let can_be_lost = matches!(
            event,
            SimEvent::VmBooted { .. }
                | SimEvent::VmStopped { .. }
                | SimEvent::MigrationStarted { .. }
                | SimEvent::MigrationCompleted { .. }
        );
        let lost = match (&mut self.fault, can_be_lost) {
            (Some(injector), true) => injector.event_lost(),
            _ => false,
        };
        self.log.push((at, event));
        self.log_lost.push(lost);
    }

    /// Overrides the migration tunables.
    #[must_use]
    pub fn with_migration_config(mut self, config: MigrationConfig) -> Self {
        self.migration_config = config;
        self
    }

    /// Overrides the step size (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics on a zero step.
    #[must_use]
    pub fn with_step(mut self, dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "zero simulation step");
        self.dt = dt;
        self
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The datacenter (read-only).
    #[must_use]
    pub fn datacenter(&self) -> &Datacenter {
        &self.datacenter
    }

    /// Mutable datacenter access for setup before running.
    pub fn datacenter_mut(&mut self) -> &mut Datacenter {
        &mut self.datacenter
    }

    /// Schedules an event.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
    }

    /// Boots a VM immediately, returning its id.
    ///
    /// # Errors
    ///
    /// Placement errors from [`crate::server::Server::boot_vm`].
    pub fn boot_vm_now(&mut self, server: ServerId, spec: VmSpec) -> Result<VmId, SimError> {
        let id = VmId::new(self.next_vm);
        self.next_vm += 1;
        let vm = Vm::new(
            id,
            spec,
            self.clock,
            self.seed ^ id.raw().wrapping_mul(0x9e37),
        );
        self.datacenter.server_mut(server)?.boot_vm(vm)?;
        self.push_log(self.clock, SimEvent::VmBooted { vm: id, server });
        Ok(id)
    }

    /// Telemetry trace of a server.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an out-of-range id.
    pub fn trace(&self, server: ServerId) -> Result<&ServerTrace, SimError> {
        self.traces
            .get(server.raw())
            .ok_or(SimError::UnknownServer(server))
    }

    /// The event log: everything that happened, in order.
    #[must_use]
    pub fn log(&self) -> &[(SimTime, SimEvent)] {
        &self.log
    }

    /// In-flight migrations.
    #[must_use]
    pub fn active_migrations(&self) -> &[ActiveMigration] {
        &self.migrations
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        // Batched instrumentation: count (and time) one step per sampling
        // window so the hot loop stays within the <3% overhead budget.
        let _step_timer = if obs::enabled() {
            self.obs_backlog += 1;
            if self.obs_backlog >= OBS_SAMPLE_EVERY {
                OBS_STEPS.add(u64::from(self.obs_backlog));
                self.obs_backlog = 0;
                Some(OBS_STEP_NS.start_timer())
            } else {
                None
            }
        } else {
            None
        };

        // Telemetry arrays may lag behind a datacenter the caller extended.
        while self.traces.len() < self.datacenter.len() {
            self.traces.push(ServerTrace::new());
        }
        if self.fault.is_some() {
            while self.delivered.len() < self.datacenter.len() {
                self.delivered.push(Vec::new());
            }
        }

        // 1. Apply due events.
        while let Some(Reverse(head)) = self.events.peek() {
            if head.at > self.clock {
                break;
            }
            let Reverse(s) = self.events.pop().expect("peeked event");
            self.apply_event(s.event);
        }

        // 2. Complete due migrations.
        let now = self.clock;
        let done: Vec<ActiveMigration> = self
            .migrations
            .iter()
            .copied()
            .filter(|m| m.is_complete(now))
            .collect();
        self.migrations.retain(|m| !m.is_complete(now));
        for m in done {
            self.finish_migration(m);
        }

        // 3. Ambient from last step's heat load (one-step lag keeps this
        //    explicit and stable).
        let ambient = self
            .ambient
            .temperature(self.clock, Watts::from_kilowatts(self.room_heat_kw));

        // 4. Step the physics and record. Each server sees the room
        //    ambient plus its rack's offset (top-of-rack recirculation).
        let dt_secs = self.dt.as_secs_f64();
        let offsets: Vec<f64> = (0..self.datacenter.len())
            .map(|i| {
                self.datacenter
                    .ambient_offset(crate::server::ServerId::new(i))
                    .unwrap_or(0.0)
            })
            .collect();
        if self.threads <= 1 && self.shards == 0 {
            // Serial fast path: identical operations per server, in the
            // same per-server order, as the sharded path below — the two
            // are bit-identical by construction (and tested to be).
            for server in self.datacenter.iter_mut() {
                let idx = server.id().raw();
                let local_ambient = ambient + offsets[idx];
                server.step(now, Celsius::new(local_ambient), Seconds::new(dt_secs));
                let trace = &mut self.traces[idx];
                let reading = server.read_sensor();
                let recorded = trace
                    .sensor_c
                    .push(now, reading)
                    .and(trace.die_c.push(now, server.die_temperature()))
                    .and(trace.utilization.push(now, server.last_utilization()))
                    .and(trace.power_w.push(now, server.last_power()))
                    .and(trace.ambient_c.push(now, local_ambient));
                // The engine clock is monotone, so recording cannot go backwards.
                debug_assert!(recorded.is_ok(), "engine clock regressed: {recorded:?}");
                // The trace above is ground truth; the monitoring plane sees
                // the reading only after the fault channels have had their say.
                if let Some(injector) = &mut self.fault {
                    if let Some((t, v)) = injector.deliver(
                        idx,
                        Seconds::new(now.as_secs_f64()),
                        Celsius::new(reading),
                    ) {
                        self.delivered[idx].push((t.get(), v.get()));
                    }
                }
            }
        } else {
            self.step_servers_sharded(now, ambient, dt_secs, &offsets);
        }
        self.room_heat_kw = self.datacenter.room_heat_kw();

        self.clock += self.dt;
    }

    /// The per-server physics phase on the sharded path: disjoint
    /// per-server work units are split into contiguous shards and
    /// drained by a scoped worker pool. Every unit owns exclusive
    /// `&mut` state indexed by stable server id, so the result is
    /// bit-identical to the serial loop for any thread or shard count.
    fn step_servers_sharded(&mut self, now: SimTime, ambient: f64, dt_secs: f64, offsets: &[f64]) {
        /// Exclusive per-server state for one step: physics, telemetry
        /// and (when a plan is installed) the fault channel state plus
        /// the delivery sink, all addressed by the same server index.
        struct StepUnit<'a> {
            server: &'a mut Server,
            trace: &'a mut ServerTrace,
            delivered: Option<&'a mut Vec<(f64, f64)>>,
            fault: Option<&'a mut ServerFaultState>,
        }

        let count = self.datacenter.len();
        let (plan, fault_states) = match self.fault.as_mut() {
            Some(injector) => {
                // Pre-grow in index order so state construction matches
                // the lazy growth of the serial path exactly.
                injector.ensure_servers(count);
                let (plan, states) = injector.split_mut();
                (Some(plan), Some(states.iter_mut()))
            }
            None => (None, None),
        };
        let mut fault_states = fault_states;
        let mut delivered = self.delivered.iter_mut();
        let has_fault = plan.is_some();

        let mut units: Vec<StepUnit<'_>> = self
            .datacenter
            .servers_mut()
            .iter_mut()
            .zip(self.traces.iter_mut())
            .map(|(server, trace)| StepUnit {
                server,
                trace,
                delivered: if has_fault { delivered.next() } else { None },
                fault: fault_states.as_mut().and_then(Iterator::next),
            })
            .collect();

        let shards = if self.shards > 0 {
            self.shards
        } else {
            self.threads
        };
        shard::for_each_chunk(&mut units, shards, self.threads, |offset, chunk| {
            for (i, unit) in chunk.iter_mut().enumerate() {
                let idx = offset + i;
                debug_assert_eq!(unit.server.id().raw(), idx, "unit order broke");
                let local_ambient = ambient + offsets[idx];
                unit.server
                    .step(now, Celsius::new(local_ambient), Seconds::new(dt_secs));
                let reading = unit.server.read_sensor();
                let recorded = unit
                    .trace
                    .sensor_c
                    .push(now, reading)
                    .and(unit.trace.die_c.push(now, unit.server.die_temperature()))
                    .and(
                        unit.trace
                            .utilization
                            .push(now, unit.server.last_utilization()),
                    )
                    .and(unit.trace.power_w.push(now, unit.server.last_power()))
                    .and(unit.trace.ambient_c.push(now, local_ambient));
                debug_assert!(recorded.is_ok(), "engine clock regressed: {recorded:?}");
                if let (Some(plan), Some(state), Some(sink)) = (
                    plan,
                    unit.fault.as_deref_mut(),
                    unit.delivered.as_deref_mut(),
                ) {
                    if let Some((t, v)) = state.deliver(
                        plan,
                        idx,
                        Seconds::new(now.as_secs_f64()),
                        Celsius::new(reading),
                    ) {
                        sink.push((t.get(), v.get()));
                    }
                }
            }
        });
    }

    /// Runs until the clock reaches `t` (inclusive of steps starting
    /// before `t`).
    pub fn run_until(&mut self, t: SimTime) {
        let _span = obs::span(names::SPAN_ENGINE_RUN);
        while self.clock < t {
            self.step();
        }
        if self.obs_backlog > 0 {
            OBS_STEPS.add(u64::from(self.obs_backlog));
            self.obs_backlog = 0;
        }
    }

    /// Runs for a further duration.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.clock + d;
        self.run_until(target);
    }

    fn apply_event(&mut self, event: Event) {
        OBS_EVENTS.inc();
        let outcome = self.try_apply(event);
        if let Err(error) = outcome {
            self.push_log(self.clock, SimEvent::EventFailed { error });
        }
    }

    fn try_apply(&mut self, event: Event) -> Result<(), SimError> {
        match event {
            Event::BootVm { server, spec } => {
                self.boot_vm_now(server, spec)?;
            }
            Event::StopVm(vm) => {
                let host = self
                    .datacenter
                    .locate_vm(vm)
                    .ok_or(SimError::UnknownVm(vm))?;
                let mut taken = self
                    .datacenter
                    .server_mut(host)?
                    .take_vm(vm)
                    .ok_or(SimError::UnknownVm(vm))?;
                taken.set_state(VmState::Stopped);
                self.push_log(self.clock, SimEvent::VmStopped { vm, server: host });
            }
            Event::MigrateVm { vm, dest } => {
                let source = self
                    .datacenter
                    .locate_vm(vm)
                    .ok_or(SimError::UnknownVm(vm))?;
                if source == dest {
                    return Err(SimError::SameServer(dest));
                }
                if self.migrations.iter().any(|m| m.vm == vm) {
                    return Err(SimError::AlreadyMigrating(vm));
                }
                // Destination must have the memory *now*; reserve by check.
                let memory_gb = {
                    let server = self.datacenter.server(source)?;
                    let v = server
                        .vms()
                        .iter()
                        .find(|v| v.id() == vm)
                        .ok_or(SimError::UnknownVm(vm))?;
                    v.spec().memory_gb()
                };
                {
                    let dest_server = self.datacenter.server(dest)?;
                    let used: f64 = dest_server.vms().iter().map(|v| v.spec().memory_gb()).sum();
                    if used + memory_gb > dest_server.spec().memory_gb() {
                        return Err(SimError::InsufficientMemory {
                            server: dest,
                            requested_gb: memory_gb,
                            available_gb: dest_server.spec().memory_gb() - used,
                        });
                    }
                }
                let duration = self.migration_config.duration_for(memory_gb);
                self.migrations.push(ActiveMigration {
                    vm,
                    source,
                    dest,
                    started: self.clock,
                    duration,
                });
                // Mark the VM and load both hosts.
                let src = self.datacenter.server_mut(source)?;
                if let Some(v) = src.vms_mut().iter_mut().find(|v| v.id() == vm) {
                    v.set_state(VmState::Migrating);
                }
                src.add_migration_overhead(self.migration_config.source_overhead_vcpus);
                self.datacenter
                    .server_mut(dest)?
                    .add_migration_overhead(self.migration_config.dest_overhead_vcpus);
                self.push_log(self.clock, SimEvent::MigrationStarted { vm, source, dest });
            }
            Event::SetFanSpeed { server, speed } => {
                self.datacenter.server_mut(server)?.set_fan_speed(speed);
            }
            Event::SetAmbient(model) => {
                self.ambient = model;
            }
            Event::FailFans { server, count } => {
                self.datacenter.server_mut(server)?.fail_fans(count);
            }
        }
        Ok(())
    }

    fn finish_migration(&mut self, m: ActiveMigration) {
        // Remove overheads whether or not the cut-over succeeds.
        if let Ok(src) = self.datacenter.server_mut(m.source) {
            src.add_migration_overhead(-self.migration_config.source_overhead_vcpus);
        }
        if let Ok(dst) = self.datacenter.server_mut(m.dest) {
            dst.add_migration_overhead(-self.migration_config.dest_overhead_vcpus);
        }
        let vm = match self.datacenter.server_mut(m.source) {
            Ok(src) => src.take_vm(m.vm),
            Err(_) => None,
        };
        if let Some(mut vm) = vm {
            vm.set_state(VmState::Running);
            match self
                .datacenter
                .server_mut(m.dest)
                .and_then(|d| d.boot_vm(vm))
            {
                Ok(()) => {
                    self.push_log(
                        self.clock,
                        SimEvent::MigrationCompleted {
                            vm: m.vm,
                            source: m.source,
                            dest: m.dest,
                        },
                    );
                }
                Err(error) => {
                    self.push_log(self.clock, SimEvent::EventFailed { error });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use crate::workload::TaskProfile;

    fn two_server_sim() -> Simulation {
        let mut dc = Datacenter::new();
        dc.add_server(ServerSpec::standard("a"), Celsius::new(25.0), 1);
        dc.add_server(ServerSpec::standard("b"), Celsius::new(25.0), 2);
        Simulation::new(dc, AmbientModel::Fixed(25.0), 7)
    }

    fn spec(vcpus: u32, mem: f64) -> VmSpec {
        VmSpec::new("t", vcpus, mem, TaskProfile::CpuBound)
    }

    #[test]
    fn clock_advances_by_dt() {
        let mut sim = two_server_sim();
        sim.step();
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(15));
    }

    #[test]
    fn boot_now_places_vm() {
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 4.0)).unwrap();
        assert_eq!(sim.datacenter().locate_vm(id), Some(ServerId::new(0)));
        assert!(matches!(sim.log()[0].1, SimEvent::VmBooted { .. }));
    }

    #[test]
    fn scheduled_boot_applies_at_time() {
        let mut sim = two_server_sim();
        sim.schedule(
            SimTime::from_secs(5),
            Event::BootVm {
                server: ServerId::new(0),
                spec: spec(2, 4.0),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.datacenter()
                .server(ServerId::new(0))
                .unwrap()
                .vm_count(),
            0
        );
        sim.step();
        assert_eq!(
            sim.datacenter()
                .server(ServerId::new(0))
                .unwrap()
                .vm_count(),
            1
        );
    }

    #[test]
    fn stop_vm_removes_it() {
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 4.0)).unwrap();
        sim.schedule(SimTime::from_secs(3), Event::StopVm(id));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.datacenter().locate_vm(id), None);
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::VmStopped { .. })));
    }

    #[test]
    fn migration_moves_vm_and_clears_overhead() {
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 8.0)).unwrap();
        sim.schedule(
            SimTime::from_secs(10),
            Event::MigrateVm {
                vm: id,
                dest: ServerId::new(1),
            },
        );
        sim.run_until(SimTime::from_secs(11));
        assert_eq!(sim.active_migrations().len(), 1);
        assert_eq!(sim.datacenter().locate_vm(id), Some(ServerId::new(0)));
        // 8 GB at 10 Gbit/s × 1.3 ≈ 8.3 s; run past it.
        sim.run_until(SimTime::from_secs(25));
        assert_eq!(sim.active_migrations().len(), 0);
        assert_eq!(sim.datacenter().locate_vm(id), Some(ServerId::new(1)));
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::MigrationCompleted { .. })));
    }

    #[test]
    fn migration_to_same_server_fails() {
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 4.0)).unwrap();
        sim.schedule(
            SimTime::from_secs(1),
            Event::MigrateVm {
                vm: id,
                dest: ServerId::new(0),
            },
        );
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.log().iter().any(|(_, e)| matches!(
            e,
            SimEvent::EventFailed {
                error: SimError::SameServer(_)
            }
        )));
    }

    #[test]
    fn migration_of_unknown_vm_fails() {
        let mut sim = two_server_sim();
        sim.schedule(
            SimTime::from_secs(1),
            Event::MigrateVm {
                vm: VmId::new(99),
                dest: ServerId::new(1),
            },
        );
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.log().iter().any(|(_, e)| matches!(
            e,
            SimEvent::EventFailed {
                error: SimError::UnknownVm(_)
            }
        )));
    }

    #[test]
    fn double_migration_rejected() {
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 32.0)).unwrap();
        sim.schedule(
            SimTime::from_secs(1),
            Event::MigrateVm {
                vm: id,
                dest: ServerId::new(1),
            },
        );
        sim.schedule(
            SimTime::from_secs(2),
            Event::MigrateVm {
                vm: id,
                dest: ServerId::new(1),
            },
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.log().iter().any(|(_, e)| matches!(
            e,
            SimEvent::EventFailed {
                error: SimError::AlreadyMigrating(_)
            }
        )));
    }

    #[test]
    fn traces_record_each_step() {
        let mut sim = two_server_sim();
        sim.boot_vm_now(ServerId::new(0), spec(4, 8.0)).unwrap();
        sim.run_until(SimTime::from_secs(30));
        let trace = sim.trace(ServerId::new(0)).unwrap();
        assert_eq!(trace.sensor_c.len(), 30);
        assert_eq!(trace.utilization.len(), 30);
        // Temperature rose under load.
        let (first, last) = (
            trace.die_c.values()[0],
            *trace.die_c.values().last().unwrap(),
        );
        assert!(last > first);
    }

    #[test]
    fn fan_event_changes_speed() {
        let mut sim = two_server_sim();
        sim.schedule(
            SimTime::from_secs(2),
            Event::SetFanSpeed {
                server: ServerId::new(0),
                speed: FanSpeed::High,
            },
        );
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(
            sim.datacenter()
                .server(ServerId::new(0))
                .unwrap()
                .fans()
                .speed(),
            FanSpeed::High
        );
    }

    #[test]
    fn ambient_event_replaces_model() {
        let mut sim = two_server_sim();
        sim.schedule(
            SimTime::from_secs(5),
            Event::SetAmbient(AmbientModel::Fixed(30.0)),
        );
        sim.run_until(SimTime::from_secs(10));
        let trace = sim.trace(ServerId::new(0)).unwrap();
        assert_eq!(*trace.ambient_c.values().last().unwrap(), 30.0);
        assert_eq!(trace.ambient_c.values()[0], 25.0);
    }

    #[test]
    fn same_timestamp_events_apply_in_schedule_order() {
        // Two ambient changes at the same instant: the later-scheduled one
        // wins (sequence numbers break ties deterministically).
        let mut sim = two_server_sim();
        sim.schedule(
            SimTime::from_secs(3),
            Event::SetAmbient(AmbientModel::Fixed(28.0)),
        );
        sim.schedule(
            SimTime::from_secs(3),
            Event::SetAmbient(AmbientModel::Fixed(31.0)),
        );
        sim.run_until(SimTime::from_secs(5));
        let trace = sim.trace(ServerId::new(0)).unwrap();
        assert_eq!(*trace.ambient_c.values().last().unwrap(), 31.0);
    }

    #[test]
    fn fan_failure_event_heats_the_server() {
        let mut sim = two_server_sim();
        sim.boot_vm_now(ServerId::new(0), spec(8, 16.0)).unwrap();
        sim.run_until(SimTime::from_secs(600));
        let healthy = sim
            .datacenter()
            .server(ServerId::new(0))
            .unwrap()
            .die_temperature();
        sim.schedule(
            SimTime::from_secs(600),
            Event::FailFans {
                server: ServerId::new(0),
                count: 3,
            },
        );
        sim.run_until(SimTime::from_secs(1400));
        let degraded = sim.datacenter().server(ServerId::new(0)).unwrap();
        assert_eq!(degraded.fans().operational(), 1);
        assert!(
            degraded.die_temperature() > healthy + 3.0,
            "fan failure did not heat: {} vs {}",
            degraded.die_temperature(),
            healthy
        );
    }

    #[test]
    fn rack_offsets_reach_the_servers() {
        use crate::datacenter::RackId;
        let mut dc = Datacenter::new();
        let cool = dc.add_server_in_rack(
            ServerSpec::standard("a"),
            RackId::new(0),
            Celsius::new(25.0),
            1,
        );
        let warm = dc.add_server_in_rack(
            ServerSpec::standard("b"),
            RackId::new(1),
            Celsius::new(25.0),
            2,
        );
        dc.set_rack_offset(RackId::new(0), 0.0);
        dc.set_rack_offset(RackId::new(1), 2.0);
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(25.0), 7);
        sim.run_until(SimTime::from_secs(10));
        let a = sim.trace(cool).unwrap().ambient_c.values()[5];
        let b = sim.trace(warm).unwrap().ambient_c.values()[5];
        assert_eq!(a, 25.0);
        assert_eq!(b, 27.0);
    }

    #[test]
    fn migration_heats_destination() {
        // The destination's utilization rises during pre-copy even before
        // the VM lands — the dynamic effect the paper's calibration absorbs.
        let mut sim = two_server_sim();
        let id = sim.boot_vm_now(ServerId::new(0), spec(4, 48.0)).unwrap();
        sim.run_until(SimTime::from_secs(5));
        let before = sim
            .trace(ServerId::new(1))
            .unwrap()
            .utilization
            .values()
            .last()
            .copied()
            .unwrap();
        sim.schedule(
            SimTime::from_secs(5),
            Event::MigrateVm {
                vm: id,
                dest: ServerId::new(1),
            },
        );
        sim.run_until(SimTime::from_secs(10));
        let during = sim
            .trace(ServerId::new(1))
            .unwrap()
            .utilization
            .values()
            .last()
            .copied()
            .unwrap();
        assert!(during > before, "dest load {during} not above {before}");
    }

    #[test]
    fn noop_fault_plan_is_bit_identical_to_no_injector() {
        let run = |install_noop: bool| {
            let mut sim = two_server_sim();
            if install_noop {
                sim.set_fault_plan(crate::fault::FaultPlan::none()).unwrap();
            }
            sim.boot_vm_now(ServerId::new(0), spec(4, 8.0)).unwrap();
            sim.run_until(SimTime::from_secs(120));
            sim.trace(ServerId::new(0))
                .unwrap()
                .sensor_c
                .values()
                .to_vec()
        };
        let clean = run(false);
        let noop = run(true);
        assert_eq!(
            clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            noop.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        // And a noop plan exposes no delivery stream at all.
        let mut sim = two_server_sim();
        sim.set_fault_plan(crate::fault::FaultPlan::none()).unwrap();
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.delivered(ServerId::new(0)).is_none());
        assert_eq!(sim.fault_stats(), crate::fault::FaultStats::default());
    }

    #[test]
    fn installed_plan_feeds_the_delivery_stream_and_keeps_traces_clean() {
        let plan = crate::fault::FaultPlan::new(3)
            .with_dropout(crate::fault::DropoutFault::scheduled(vec![(10.0, 20.0)]).unwrap());
        let mut sim = two_server_sim();
        sim.set_fault_plan(plan).unwrap();
        sim.boot_vm_now(ServerId::new(0), spec(4, 8.0)).unwrap();
        sim.run_until(SimTime::from_secs(30));
        let trace = sim.trace(ServerId::new(0)).unwrap();
        assert_eq!(trace.sensor_c.len(), 30, "physics trace stays complete");
        let delivered = sim.delivered(ServerId::new(0)).unwrap();
        assert_eq!(delivered.len(), 20, "the 10 s window was dropped");
        assert!(delivered.iter().all(|(t, _)| !(10.0..20.0).contains(t)));
        assert_eq!(sim.fault_stats().dropped, 20, "10 s x 2 servers");
    }

    #[test]
    fn lost_events_are_flagged_in_the_log() {
        let plan = crate::fault::FaultPlan::new(1)
            .with_lost_events(crate::fault::LostEventFault::random(1.0).unwrap());
        let mut sim = two_server_sim();
        sim.set_fault_plan(plan).unwrap();
        let id = sim.boot_vm_now(ServerId::new(0), spec(2, 4.0)).unwrap();
        sim.schedule(SimTime::from_secs(2), Event::StopVm(id));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(sim.log().len(), 2);
        assert!(sim.log_entry_lost(0) && sim.log_entry_lost(1));
        assert_eq!(sim.fault_stats().events_lost, 2);
        // Without a plan nothing is ever lost.
        let mut clean = two_server_sim();
        clean.boot_vm_now(ServerId::new(0), spec(2, 4.0)).unwrap();
        assert!(!clean.log_entry_lost(0));
    }

    /// A faulted 11-server fleet advanced for `steps`, fingerprinted by
    /// every value that feeds downstream consumers.
    fn sharded_fingerprint(threads: usize, shards: usize, steps: u64) -> Vec<u64> {
        let dc = Datacenter::homogeneous(&ServerSpec::standard("n"), 11, 4, Celsius::new(24.0), 5);
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 9).with_threads(threads);
        sim.set_shards(shards);
        sim.set_fault_plan(
            crate::fault::FaultPlan::new(21)
                .with_dropout(
                    crate::fault::DropoutFault::random(0.02, Seconds::new(2.0), Seconds::new(6.0))
                        .unwrap(),
                )
                .with_spike(
                    crate::fault::SpikeFault::random(0.05, Celsius::new(4.0), Celsius::new(9.0))
                        .unwrap(),
                )
                .with_jitter(crate::fault::JitterFault::random(0.1, Seconds::new(1.5)).unwrap()),
        )
        .unwrap();
        for s in 0..11 {
            sim.boot_vm_now(ServerId::new(s), spec(2, 4.0)).unwrap();
        }
        sim.run_until(SimTime::from_secs(steps));
        let mut fp = vec![sim.room_heat_kw.to_bits()];
        for s in 0..sim.datacenter().len() {
            let id = ServerId::new(s);
            let server = sim.datacenter().server(id).unwrap();
            fp.push(server.die_temperature().to_bits());
            let trace = sim.trace(id).unwrap();
            for (t, v) in trace.sensor_c.iter() {
                fp.push(t.to_bits());
                fp.push(v.to_bits());
            }
            for (t, v) in sim.delivered(id).unwrap() {
                fp.push(t.to_bits());
                fp.push(v.to_bits());
            }
            let stats = sim.fault.as_ref().unwrap().stats(s);
            fp.extend([stats.dropped, stats.stuck, stats.spiked, stats.jittered]);
        }
        fp
    }

    #[test]
    fn sharded_stepping_is_bit_identical_across_threads_and_shards() {
        let reference = sharded_fingerprint(1, 0, 40);
        for (threads, shards) in [(1, 3), (2, 0), (2, 5), (4, 0), (4, 2), (8, 11), (3, 64)] {
            assert_eq!(
                reference,
                sharded_fingerprint(threads, shards, 40),
                "threads={threads} shards={shards} diverged from serial"
            );
        }
    }
}
