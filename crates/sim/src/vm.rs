//! Virtual machines: specifications and runtime instances.

use crate::time::SimTime;
use crate::workload::{TaskProfile, UtilizationGenerator};
use serde::{Deserialize, Serialize};

/// Opaque VM identifier, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(u64);

impl VmId {
    /// Wraps a raw id (the engine allocates these sequentially).
    #[must_use]
    pub fn new(raw: u64) -> Self {
        VmId(raw)
    }

    /// The raw value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Static configuration of a VM — the "VM configurations and deployed
/// tasks" half of the paper's ξ_VM input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    name: String,
    vcpus: u32,
    memory_gb: f64,
    task: TaskProfile,
}

impl VmSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero or `memory_gb` is non-positive.
    #[must_use]
    pub fn new(name: impl Into<String>, vcpus: u32, memory_gb: f64, task: TaskProfile) -> Self {
        assert!(vcpus > 0, "vm needs at least one vcpu");
        assert!(memory_gb > 0.0, "vm needs positive memory");
        VmSpec {
            name: name.into(),
            vcpus,
            memory_gb,
            task,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of virtual CPUs.
    #[must_use]
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Configured memory (GB).
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// The deployed task.
    #[must_use]
    pub fn task(&self) -> TaskProfile {
        self.task
    }

    /// Long-run expected CPU demand in vCPU units (`vcpus × nominal`).
    #[must_use]
    pub fn nominal_demand(&self) -> f64 {
        self.vcpus as f64 * self.task.nominal_cpu()
    }
}

/// VM lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// Executing on a host.
    Running,
    /// Being live-migrated (still executing on the source).
    Migrating,
    /// Shut down.
    Stopped,
}

/// A running VM instance with its private workload generator.
#[derive(Debug, Clone)]
pub struct Vm {
    id: VmId,
    spec: VmSpec,
    state: VmState,
    workload: UtilizationGenerator,
    started_at: SimTime,
}

impl Vm {
    /// Instantiates a VM; `seed` decorrelates its workload trace from other
    /// VMs with the same profile.
    #[must_use]
    pub fn new(id: VmId, spec: VmSpec, started_at: SimTime, seed: u64) -> Self {
        let workload = spec
            .task()
            .utilization_model(seed ^ id.raw())
            .into_generator();
        Vm {
            id,
            spec,
            state: VmState::Running,
            workload,
            started_at,
        }
    }

    /// Identifier.
    #[must_use]
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Static spec.
    #[must_use]
    pub fn spec(&self) -> &VmSpec {
        &self.spec
    }

    /// Lifecycle state.
    #[must_use]
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Sets the lifecycle state (engine/migration use).
    pub fn set_state(&mut self, state: VmState) {
        self.state = state;
    }

    /// When the VM booted.
    #[must_use]
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Replaces the workload generator — used to drive a VM from a
    /// recorded utilization trace instead of its task profile's synthetic
    /// model.
    pub fn replace_workload(&mut self, workload: UtilizationGenerator) {
        self.workload = workload;
    }

    /// Instantaneous CPU demand at `t`, in vCPU units (`0..=vcpus`).
    /// Stopped VMs demand nothing.
    pub fn cpu_demand(&mut self, t: SimTime) -> f64 {
        if self.state == VmState::Stopped {
            return 0.0;
        }
        self.spec.vcpus() as f64 * self.workload.at(t)
    }

    /// `true` when [`Vm::cpu_demand`] returns the same value at every
    /// query time and consumes no randomness: stopped VMs and constant
    /// workload models. The event-driven engine only lets a host sleep
    /// across ticks when every resident VM satisfies this.
    #[must_use]
    pub fn demand_is_constant(&self) -> bool {
        self.state == VmState::Stopped
            || matches!(
                self.workload.model(),
                crate::workload::UtilizationModel::Constant(_)
            )
    }

    /// Actively used memory (GB), scaled by the task's memory intensity.
    #[must_use]
    pub fn active_memory_gb(&self) -> f64 {
        if self.state == VmState::Stopped {
            0.0
        } else {
            self.spec.memory_gb() * self.spec.task().memory_intensity()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> VmSpec {
        VmSpec::new("web-1", 2, 4.0, TaskProfile::WebServer)
    }

    #[test]
    fn spec_accessors() {
        let s = spec();
        assert_eq!(s.name(), "web-1");
        assert_eq!(s.vcpus(), 2);
        assert_eq!(s.memory_gb(), 4.0);
        assert_eq!(s.task(), TaskProfile::WebServer);
    }

    #[test]
    fn nominal_demand_scales_with_vcpus() {
        let s = VmSpec::new("hog", 4, 8.0, TaskProfile::CpuBound);
        assert!((s.nominal_demand() - 4.0 * 0.90).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one vcpu")]
    fn zero_vcpus_panics() {
        let _ = VmSpec::new("bad", 0, 1.0, TaskProfile::Idle);
    }

    #[test]
    #[should_panic(expected = "positive memory")]
    fn zero_memory_panics() {
        let _ = VmSpec::new("bad", 1, 0.0, TaskProfile::Idle);
    }

    #[test]
    fn cpu_demand_bounded_by_vcpus() {
        let mut vm = Vm::new(VmId::new(1), spec(), SimTime::ZERO, 7);
        for s in (0..3600).step_by(60) {
            let d = vm.cpu_demand(SimTime::from_secs(s));
            assert!((0.0..=2.0).contains(&d), "demand {d}");
        }
    }

    #[test]
    fn stopped_vm_demands_nothing() {
        let mut vm = Vm::new(VmId::new(1), spec(), SimTime::ZERO, 7);
        vm.set_state(VmState::Stopped);
        assert_eq!(vm.cpu_demand(SimTime::from_secs(10)), 0.0);
        assert_eq!(vm.active_memory_gb(), 0.0);
    }

    #[test]
    fn active_memory_scaled_by_intensity() {
        let vm = Vm::new(
            VmId::new(2),
            VmSpec::new("db", 2, 10.0, TaskProfile::MemoryBound),
            SimTime::ZERO,
            0,
        );
        assert!((vm.active_memory_gb() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn same_profile_different_ids_decorrelated() {
        let spec = VmSpec::new("a", 1, 1.0, TaskProfile::CpuBound);
        let mut a = Vm::new(VmId::new(1), spec.clone(), SimTime::ZERO, 7);
        let mut b = Vm::new(VmId::new(2), spec, SimTime::ZERO, 7);
        let ta: Vec<f64> = (0..20)
            .map(|s| a.cpu_demand(SimTime::from_secs(s)))
            .collect();
        let tb: Vec<f64> = (0..20)
            .map(|s| b.cpu_demand(SimTime::from_secs(s)))
            .collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn vm_id_display() {
        assert_eq!(VmId::new(3).to_string(), "vm-3");
    }

    #[test]
    fn demand_constancy_tracks_profile_and_state() {
        let idle = Vm::new(
            VmId::new(1),
            VmSpec::new("i", 1, 1.0, TaskProfile::Idle),
            SimTime::ZERO,
            0,
        );
        assert!(idle.demand_is_constant(), "Idle maps to a constant model");
        let mut web = Vm::new(VmId::new(2), spec(), SimTime::ZERO, 0);
        assert!(!web.demand_is_constant(), "WebServer is time-varying");
        web.set_state(VmState::Stopped);
        assert!(web.demand_is_constant(), "stopped VMs demand nothing");
    }
}
