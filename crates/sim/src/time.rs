//! Simulation time.
//!
//! Time is kept as integer **milliseconds** so that event ordering and
//! fixed-step integration are exact; floating-point seconds are derived
//! views. The paper's quantities (`t_break = 600 s`, Δ_gap, Δ_update) are
//! all whole seconds, comfortably representable.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock (milliseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `ms` milliseconds after the epoch.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// An instant `secs` seconds after the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since the epoch.
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (exact for whole milliseconds).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` (simulation time never runs
    /// backwards).
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `ms` milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// A duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Length in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// `true` for the zero duration.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division: how many whole `step`s fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn div_steps(self, step: SimDuration) -> u64 {
        assert!(step.0 > 0, "div_steps: zero step");
        self.0 / step.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

/// A deterministic wake-up queue for event-driven stepping: a min-heap
/// of `(SimTime, server index)` pairs.
///
/// The heap key is the **whole tuple**, so the ordering is total: two
/// wake-ups at the same instant resolve by stable server index, never
/// by insertion order, heap layout or address. That is what makes
/// event-driven stepping bit-identical run to run — same-time wake-ups
/// always drain in server-index order, matching the serial dense loop.
///
/// Superseded entries are handled by **lazy deletion**: the engine keeps
/// the authoritative next-wake time per server and discards popped
/// entries that no longer match it, so re-scheduling a server earlier
/// never has to search the heap.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of entries (including superseded ones not yet popped).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules a wake-up for `server` at `at`.
    pub fn schedule(&mut self, at: SimTime, server: usize) {
        self.heap.push(Reverse((at, server)));
    }

    /// The earliest queued `(time, server)` pair, if any.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.peek().map(|Reverse(entry)| *entry)
    }

    /// Pops the earliest entry if it is due at or before `now`.
    /// Call in a loop to drain everything due this tick; same-time
    /// entries come out in ascending server-index order.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, usize)> {
        match self.heap.peek() {
            Some(Reverse((at, _))) if *at <= now => self.heap.pop().map(|Reverse(entry)| entry),
            _ => None,
        }
    }

    /// Drops every queued entry.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let t = SimTime::from_secs(600);
        assert_eq!(t.as_millis(), 600_000);
        assert_eq!(t.as_secs_f64(), 600.0);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(15), SimTime::ZERO);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_millis(250);
        assert_eq!(u.as_millis(), 250);
    }

    #[test]
    fn duration_since() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(10);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(7));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "after")]
    fn duration_since_backwards_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_secs(1));
    }

    #[test]
    fn div_steps_counts_whole_steps() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.div_steps(SimDuration::from_secs(3)), 3);
        assert_eq!(d.div_steps(SimDuration::from_millis(2500)), 4);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "t=1.234s");
        assert_eq!(SimDuration::from_secs(60).to_string(), "60.000s");
    }

    #[test]
    fn event_queue_orders_by_time_then_server_index() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 3);
        q.schedule(SimTime::from_secs(2), 7);
        q.schedule(SimTime::from_secs(5), 1);
        q.schedule(SimTime::from_secs(2), 0);
        assert_eq!(q.len(), 4);
        let mut drained = Vec::new();
        while let Some(entry) = q.pop_due(SimTime::from_secs(10)) {
            drained.push(entry);
        }
        assert_eq!(
            drained,
            vec![
                (SimTime::from_secs(2), 0),
                (SimTime::from_secs(2), 7),
                (SimTime::from_secs(5), 1),
                (SimTime::from_secs(5), 3),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4), 0);
        q.schedule(SimTime::from_secs(6), 1);
        assert_eq!(q.pop_due(SimTime::from_secs(3)), None);
        assert_eq!(
            q.pop_due(SimTime::from_secs(4)),
            Some((SimTime::from_secs(4), 0))
        );
        assert_eq!(q.pop_due(SimTime::from_secs(4)), None);
        assert_eq!(q.peek(), Some((SimTime::from_secs(6), 1)));
        q.clear();
        assert!(q.is_empty());
    }
}
