//! Machine-room environment: the ambient (inlet) temperature δ_env.
//!
//! The paper calls out environment temperature as "a non-negligible impact
//! on CPU temperature" and feeds it into the model as δ_env. These models
//! cover the scenarios the harness needs: a fixed CRAC setpoint, a diurnal
//! drift, a CRAC with load-dependent supply temperature, and scripted step
//! changes for dynamic-prediction experiments.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use vmtherm_units::{Celsius, Watts};

/// A deterministic ambient-temperature process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AmbientModel {
    /// Constant inlet temperature (a well-regulated cold aisle).
    Fixed(f64),
    /// `mean + amplitude · sin(2π t / period)` — slow room-level drift.
    Diurnal {
        /// Mean temperature (°C).
        mean: f64,
        /// Peak deviation (°C).
        amplitude: f64,
        /// Period in seconds (86 400 for a day).
        period_secs: f64,
    },
    /// CRAC supply with a setpoint plus a load-proportional offset:
    /// `setpoint + heat_load_kw · degrees_per_kw`, capturing recirculation
    /// in under-provisioned rooms.
    Crac {
        /// Supply setpoint (°C).
        setpoint: f64,
        /// Inlet rise per kW of room heat load (°C/kW).
        degrees_per_kw: f64,
    },
    /// Piecewise-constant schedule: `(start_time, temperature)` entries,
    /// sorted; the value before the first entry is the first entry's.
    Schedule(Vec<(SimTime, f64)>),
}

impl AmbientModel {
    /// Ambient temperature at time `t`, given the current room heat load
    /// (only [`AmbientModel::Crac`] consumes the load).
    ///
    /// # Panics
    ///
    /// Panics if a [`AmbientModel::Schedule`] is empty.
    #[must_use]
    pub fn temperature(&self, t: SimTime, room_heat_w: Watts) -> f64 {
        match self {
            AmbientModel::Fixed(v) => *v,
            AmbientModel::Diurnal {
                mean,
                amplitude,
                period_secs,
            } => mean + amplitude * (std::f64::consts::TAU * t.as_secs_f64() / period_secs).sin(),
            AmbientModel::Crac {
                setpoint,
                degrees_per_kw,
            } => setpoint + degrees_per_kw * room_heat_w.kilowatts().max(0.0),
            AmbientModel::Schedule(entries) => {
                assert!(!entries.is_empty(), "empty ambient schedule");
                let mut current = entries[0].1;
                for (start, temp) in entries {
                    if *start <= t {
                        current = *temp;
                    } else {
                        break;
                    }
                }
                current
            }
        }
    }

    /// A schedule holding `before` until `at`, then `after` — the step
    /// change used in dynamic-prediction case studies.
    #[must_use]
    pub fn step_change(before: Celsius, after: Celsius, at: SimTime) -> Self {
        AmbientModel::Schedule(vec![(SimTime::ZERO, before.get()), (at, after.get())])
    }
}

impl Default for AmbientModel {
    /// 25 °C fixed — a typical ASHRAE-recommended cold-aisle midpoint.
    fn default() -> Self {
        AmbientModel::Fixed(25.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(v: f64) -> Watts {
        Watts::from_kilowatts(v)
    }

    #[test]
    fn fixed_ignores_time_and_load() {
        let m = AmbientModel::Fixed(22.0);
        assert_eq!(m.temperature(SimTime::ZERO, Watts::ZERO), 22.0);
        assert_eq!(m.temperature(SimTime::from_secs(9999), kw(50.0)), 22.0);
    }

    #[test]
    fn diurnal_returns_to_mean_each_period() {
        let m = AmbientModel::Diurnal {
            mean: 24.0,
            amplitude: 3.0,
            period_secs: 1000.0,
        };
        assert!((m.temperature(SimTime::ZERO, Watts::ZERO) - 24.0).abs() < 1e-9);
        assert!((m.temperature(SimTime::from_secs(1000), Watts::ZERO) - 24.0).abs() < 1e-9);
        let peak = m.temperature(SimTime::from_secs(250), Watts::ZERO);
        assert!((peak - 27.0).abs() < 1e-9);
    }

    #[test]
    fn crac_tracks_heat_load() {
        let m = AmbientModel::Crac {
            setpoint: 18.0,
            degrees_per_kw: 0.2,
        };
        assert_eq!(m.temperature(SimTime::ZERO, Watts::ZERO), 18.0);
        assert_eq!(m.temperature(SimTime::ZERO, kw(10.0)), 20.0);
        // Negative load clamps.
        assert_eq!(m.temperature(SimTime::ZERO, kw(-5.0)), 18.0);
    }

    #[test]
    fn schedule_steps_through_entries() {
        let m = AmbientModel::Schedule(vec![
            (SimTime::ZERO, 20.0),
            (SimTime::from_secs(100), 24.0),
            (SimTime::from_secs(200), 28.0),
        ]);
        assert_eq!(m.temperature(SimTime::from_secs(50), Watts::ZERO), 20.0);
        assert_eq!(m.temperature(SimTime::from_secs(100), Watts::ZERO), 24.0);
        assert_eq!(m.temperature(SimTime::from_secs(150), Watts::ZERO), 24.0);
        assert_eq!(m.temperature(SimTime::from_secs(500), Watts::ZERO), 28.0);
    }

    #[test]
    fn step_change_constructor() {
        let m = AmbientModel::step_change(
            Celsius::new(20.0),
            Celsius::new(26.0),
            SimTime::from_secs(300),
        );
        assert_eq!(m.temperature(SimTime::from_secs(299), Watts::ZERO), 20.0);
        assert_eq!(m.temperature(SimTime::from_secs(300), Watts::ZERO), 26.0);
    }

    #[test]
    #[should_panic(expected = "empty ambient schedule")]
    fn empty_schedule_panics() {
        let _ = AmbientModel::Schedule(vec![]).temperature(SimTime::ZERO, Watts::ZERO);
    }
}
