//! # vmtherm-sim
//!
//! A discrete-time **datacenter thermal simulator**: servers with lumped-RC
//! thermal networks, power models driven by per-VM workloads, fans,
//! quantized noisy temperature sensors, room ambient models, live VM
//! migration and an event-driven engine.
//!
//! It stands in for the physical testbed of *"Virtual Machine Level
//! Temperature Profiling and Prediction in Cloud Datacenters"*
//! (Wu et al., ICDCS 2016): where the authors ran experiments on real
//! servers and read IPMI sensors, this crate runs the same protocol on
//! simulated physics. The learned models in `vmtherm-core` only ever see
//! `(configuration, sensor reading)` pairs — never the physics — exactly
//! as in the paper.
//!
//! ## Quick start: one experiment record
//!
//! ```
//! use vmtherm_sim::experiment::ExperimentConfig;
//! use vmtherm_sim::server::ServerSpec;
//! use vmtherm_sim::units::Celsius;
//! use vmtherm_sim::vm::VmSpec;
//! use vmtherm_sim::workload::TaskProfile;
//!
//! let config = ExperimentConfig::new(
//!     ServerSpec::standard("node-1"),
//!     vec![
//!         VmSpec::new("web", 2, 4.0, TaskProfile::WebServer),
//!         VmSpec::new("batch", 4, 8.0, TaskProfile::CpuBound),
//!     ],
//!     Celsius::new(25.0), // ambient
//!     42,                 // seed
//! );
//! let outcome = config.run();
//! // ψ_stable: mean sensor temperature after t_break = 600 s (Eq. 1).
//! assert!(outcome.psi_stable > 25.0);
//! ```
//!
//! ## Module map
//!
//! - [`time`] — millisecond-precision simulation clock
//! - [`workload`] — task profiles and utilization traces (ξ_VM's tasks)
//! - [`vm`] / [`server`] / [`datacenter`] — the modelled fleet
//! - [`power`] / [`thermal`] / [`fan`] / [`sensor`] / [`environment`] — physics
//! - [`vmm`] — vCPU→core scheduling and per-core thermal modelling
//! - [`migration`] — live pre-copy migration costs
//! - [`engine`] — event-driven stepping and telemetry
//! - [`telemetry`] — time series and traces
//! - [`experiment`] — the paper's run-to-stable record collection protocol
//! - [`scenario`] — declarative scenarios, the seeded fuzzer's generator,
//!   differential-oracle battery and shrinker

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` rejects NaN as well as non-positive values — the validation
// idiom used throughout; and numeric solver loops index several parallel
// arrays at once, where iterator zips would obscure the maths.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod cooling;
pub mod datacenter;
/// Unit-safety newtypes shared across the workspace, re-exported from
/// [`vmtherm_units`] so simulator callers need only one dependency.
pub mod units {
    pub use vmtherm_units::*;
}
pub mod engine;
pub mod environment;
pub mod error;
pub mod experiment;
pub mod fan;
pub mod fault;
pub mod migration;
pub mod power;
pub mod scenario;
pub mod sensor;
pub mod server;
pub mod shard;
pub mod telemetry;
pub mod thermal;
pub mod time;
pub mod vm;
pub mod vmm;
pub mod workload;

pub use datacenter::Datacenter;
pub use engine::{ClockMode, Event, SimEvent, Simulation, StepStats, WakePolicy};
pub use environment::AmbientModel;
pub use error::SimError;
pub use experiment::{CaseGenerator, ConfigSnapshot, ExperimentConfig, ExperimentOutcome};
pub use fault::{
    DropoutFault, FaultInjector, FaultPlan, FaultStats, JitterFault, LostEventFault, SpikeFault,
    StuckFault,
};
pub use scenario::{
    oracle::{OracleConfig, OracleFailure, ScenarioReport},
    shrink::ShrinkResult,
    Scenario, ScenarioAction, ScenarioEvent,
};
pub use server::{Server, ServerId, ServerSpec};
pub use telemetry::{ServerTrace, TelemetryError, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use vm::{Vm, VmId, VmSpec};
pub use workload::TaskProfile;
