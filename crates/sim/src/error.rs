//! Error type for the simulator.

use crate::server::ServerId;
use crate::vm::VmId;
use std::error::Error;
use std::fmt;

/// Errors produced by placement, migration and engine operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A VM did not fit in a server's remaining memory.
    InsufficientMemory {
        /// Target server.
        server: ServerId,
        /// Memory the VM asked for (GB).
        requested_gb: f64,
        /// Memory still free (GB).
        available_gb: f64,
    },
    /// An operation referenced a VM the simulation does not know.
    UnknownVm(VmId),
    /// An operation referenced a server outside the datacenter.
    UnknownServer(ServerId),
    /// A migration was requested for a VM already migrating.
    AlreadyMigrating(VmId),
    /// Migration source and destination are the same server.
    SameServer(ServerId),
    /// A configuration parameter (sensor or fault plan) was out of domain.
    InvalidConfig {
        /// Which parameter was rejected.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`].
    pub(crate) fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InsufficientMemory { server, requested_gb, available_gb } => write!(
                f,
                "insufficient memory on {server}: requested {requested_gb} GB, available {available_gb:.1} GB"
            ),
            SimError::UnknownVm(id) => write!(f, "unknown vm {id}"),
            SimError::UnknownServer(id) => write!(f, "unknown server {id}"),
            SimError::AlreadyMigrating(id) => write!(f, "{id} is already migrating"),
            SimError::SameServer(id) => {
                write!(f, "migration source and destination are both {id}")
            }
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid {field}: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::InsufficientMemory {
            server: ServerId::new(2),
            requested_gb: 8.0,
            available_gb: 4.0,
        };
        let s = e.to_string();
        assert!(s.contains("server-2") && s.contains("8") && s.contains("4.0"));
        assert_eq!(
            SimError::UnknownVm(VmId::new(5)).to_string(),
            "unknown vm vm-5"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
