//! Cooling infrastructure power — the quantity the paper's introduction
//! targets: cooling "form\[s\] approximately half of the total consumption",
//! and temperature prediction exists to let operators run the room warmer
//! without hotspots.
//!
//! The model is the standard chiller/CRAC efficiency curve: the
//! coefficient of performance (COP = heat removed / electrical power)
//! improves roughly linearly with supply temperature — the basis of every
//! "raise the setpoint" energy argument (e.g. ASHRAE's widened envelopes).

use serde::{Deserialize, Serialize};
use vmtherm_units::{Celsius, Watts};

/// A CRAC/chiller unit's efficiency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingModel {
    /// COP at the reference supply temperature.
    cop_reference: f64,
    /// Reference supply temperature (°C).
    reference_supply_c: f64,
    /// Relative COP gain per +1 °C of supply temperature (≈ 0.03–0.05).
    cop_slope: f64,
}

impl CoolingModel {
    /// Creates a model. `cop_slope` is the relative COP gain per +1 °C of
    /// supply temperature.
    ///
    /// # Panics
    ///
    /// Panics on non-positive reference COP or negative slope.
    #[must_use]
    pub fn new(cop_reference: f64, reference_supply_c: Celsius, cop_slope: f64) -> Self {
        assert!(cop_reference > 0.0, "reference COP must be positive");
        assert!(cop_slope >= 0.0, "COP slope must be non-negative");
        CoolingModel {
            cop_reference,
            reference_supply_c: reference_supply_c.get(),
            cop_slope,
        }
    }

    /// COP at a given supply temperature. Clamped below at 0.2 (a chiller
    /// never consumes unboundedly, but the clamp keeps far-out-of-range
    /// queries sane).
    #[must_use]
    pub fn cop(&self, supply_c: Celsius) -> f64 {
        let rel = 1.0 + self.cop_slope * (supply_c.get() - self.reference_supply_c);
        (self.cop_reference * rel).max(0.2)
    }

    /// Electrical power (W) to remove `heat_load_w` of IT + fan heat at a
    /// given supply temperature.
    ///
    /// # Panics
    ///
    /// Panics on negative heat load.
    #[must_use]
    pub fn cooling_power(&self, heat_load_w: Watts, supply_c: Celsius) -> f64 {
        assert!(heat_load_w.get() >= 0.0, "negative heat load");
        heat_load_w.get() / self.cop(supply_c)
    }

    /// Power usage effectiveness for a room: `(IT + cooling + overhead) / IT`.
    ///
    /// # Panics
    ///
    /// Panics on zero IT power.
    #[must_use]
    pub fn pue(&self, it_power_w: Watts, supply_c: Celsius, overhead_w: Watts) -> f64 {
        assert!(it_power_w.get() > 0.0, "IT power must be positive");
        let cooling = self.cooling_power(it_power_w, supply_c);
        (it_power_w.get() + cooling + overhead_w.get().max(0.0)) / it_power_w.get()
    }
}

impl Default for CoolingModel {
    /// COP 3.0 at 18 °C supply, +4 %/°C — a mid-2010s chilled-water CRAC.
    fn default() -> Self {
        CoolingModel::new(3.0, Celsius::new(18.0), 0.04)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn w(v: f64) -> Watts {
        Watts::new(v)
    }

    #[test]
    fn cop_rises_with_supply_temperature() {
        let m = CoolingModel::default();
        assert!(m.cop(c(25.0)) > m.cop(c(18.0)));
        assert!((m.cop(c(18.0)) - 3.0).abs() < 1e-12);
        // +4%/°C: at 28 °C, COP = 3.0 * 1.4.
        assert!((m.cop(c(28.0)) - 4.2).abs() < 1e-12);
    }

    #[test]
    fn cop_clamped_at_floor() {
        let m = CoolingModel::new(1.0, c(18.0), 0.5);
        assert_eq!(m.cop(c(-100.0)), 0.2);
    }

    #[test]
    fn cooling_power_inverse_in_cop() {
        let m = CoolingModel::default();
        let cold = m.cooling_power(w(30_000.0), c(18.0));
        let warm = m.cooling_power(w(30_000.0), c(26.0));
        assert!(
            warm < cold,
            "warmer supply must cost less: {warm} vs {cold}"
        );
        assert!((cold - 10_000.0).abs() < 1e-9); // 30 kW / COP 3.
    }

    #[test]
    fn raising_setpoint_10c_saves_roughly_a_quarter() {
        // The industry rule of thumb (~3–5% per °C) emerges from the model.
        let m = CoolingModel::default();
        let base = m.cooling_power(w(100_000.0), c(18.0));
        let raised = m.cooling_power(w(100_000.0), c(28.0));
        let saving = 1.0 - raised / base;
        assert!((0.2..0.4).contains(&saving), "saving {saving}");
    }

    #[test]
    fn pue_behaves() {
        let m = CoolingModel::default();
        let pue = m.pue(w(100_000.0), c(18.0), w(5_000.0));
        // 100 kW IT + 33.3 kW cooling + 5 kW overhead → ~1.38.
        assert!((pue - 1.3833).abs() < 1e-3, "pue {pue}");
        assert!(m.pue(w(100_000.0), c(26.0), w(5_000.0)) < pue);
    }

    #[test]
    #[should_panic(expected = "negative heat load")]
    fn negative_load_panics() {
        let _ = CoolingModel::default().cooling_power(w(-1.0), c(20.0));
    }

    #[test]
    #[should_panic(expected = "reference COP")]
    fn bad_cop_panics() {
        let _ = CoolingModel::new(0.0, c(18.0), 0.04);
    }
}
