//! The data-collection protocol of the paper.
//!
//! "Numerous experiments were conducted under different scenarios": each
//! experiment fixes a configuration (server, VM set, fans, ambient), runs
//! until the temperature stabilises, and produces **one record** — the
//! Eq. (2) `{input, output}` pair, where the output ψ_stable is the mean
//! sensor temperature after `t_break = 600 s` (Eq. 1).
//!
//! [`ExperimentConfig::run`] executes one such experiment on the simulator;
//! [`CaseGenerator`] samples the randomised cases of Fig. 1(a)
//! (2–12 VMs, varying fans and ambient).

use crate::datacenter::Datacenter;
use crate::engine::Simulation;
use crate::environment::AmbientModel;
use crate::server::{ServerId, ServerSpec};
use crate::telemetry::TimeSeries;
use crate::time::{SimDuration, SimTime};
use crate::vm::VmSpec;
use crate::workload::{TaskProfile, ALL_TASK_PROFILES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vmtherm_units::Celsius;

/// Per-VM facts exposed to feature encoding (the ξ_VM input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmInfo {
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Configured memory (GB).
    pub memory_gb: f64,
    /// Deployed task.
    pub task: TaskProfile,
}

/// Everything the paper's Eq. (2) input covers, as raw facts (the
/// `vmtherm-core::features` module turns this into a numeric vector).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSnapshot {
    /// Server CPU capacity, core·GHz — θ_cpu.
    pub theta_cpu: f64,
    /// Installed server memory, GB — θ_memory.
    pub theta_memory_gb: f64,
    /// Fan count — part of θ_fan.
    pub fan_count: u32,
    /// Total airflow, CFM — the effective θ_fan.
    pub fan_airflow_cfm: f64,
    /// Hosted VMs — ξ_VM.
    pub vms: Vec<VmInfo>,
    /// Environment temperature, °C — δ_env.
    pub ambient_c: f64,
}

impl ConfigSnapshot {
    /// Captures the snapshot for one server of a simulation at its current
    /// configuration.
    #[must_use]
    pub fn capture(sim: &Simulation, server: ServerId, ambient_c: Celsius) -> Self {
        let s = sim
            .datacenter()
            .server(server)
            .expect("snapshot of unknown server");
        ConfigSnapshot {
            theta_cpu: s.spec().theta_cpu(),
            theta_memory_gb: s.spec().memory_gb(),
            fan_count: s.fans().count(),
            fan_airflow_cfm: s.fans().airflow_cfm(),
            vms: s
                .vms()
                .iter()
                .map(|v| VmInfo {
                    vcpus: v.spec().vcpus(),
                    memory_gb: v.spec().memory_gb(),
                    task: v.spec().task(),
                })
                .collect(),
            ambient_c: ambient_c.get(),
        }
    }

    /// Total vCPUs across VMs.
    #[must_use]
    pub fn total_vcpus(&self) -> u32 {
        self.vms.iter().map(|v| v.vcpus).sum()
    }

    /// Total configured VM memory (GB).
    #[must_use]
    pub fn total_vm_memory_gb(&self) -> f64 {
        self.vms.iter().map(|v| v.memory_gb).sum()
    }

    /// Expected aggregate CPU demand in vCPU units from nominal task
    /// levels.
    #[must_use]
    pub fn nominal_demand(&self) -> f64 {
        self.vms
            .iter()
            .map(|v| v.vcpus as f64 * v.task.nominal_cpu())
            .sum()
    }
}

/// One experiment: fixed configuration, run to stability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Server under test.
    pub server: ServerSpec,
    /// VMs deployed at t = 0.
    pub vms: Vec<VmSpec>,
    /// Room temperature (fixed for the run) — δ_env.
    pub ambient_c: f64,
    /// Total run length t_exp (default 1500 s).
    pub duration: SimDuration,
    /// Break-in time before averaging (paper: 600 s).
    pub t_break: SimDuration,
    /// Workload/sensor seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A standard experiment on the given server/VM set with paper
    /// constants (`t_break = 600 s`, `t_exp = 1500 s`).
    #[must_use]
    pub fn new(server: ServerSpec, vms: Vec<VmSpec>, ambient_c: Celsius, seed: u64) -> Self {
        ExperimentConfig {
            server,
            vms,
            ambient_c: ambient_c.get(),
            duration: SimDuration::from_secs(1500),
            t_break: SimDuration::from_secs(600),
            seed,
        }
    }

    /// Overrides the run length.
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the break-in time.
    #[must_use]
    pub fn with_t_break(mut self, t_break: SimDuration) -> Self {
        self.t_break = t_break;
        self
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a VM does not fit on the server (experiment configs are
    /// expected to be feasible; [`CaseGenerator`] only emits feasible ones)
    /// or if `t_break >= duration`.
    #[must_use]
    pub fn run(&self) -> ExperimentOutcome {
        let _span = vmtherm_obs::span(vmtherm_obs::names::SPAN_EXPERIMENT_RUN);
        assert!(
            self.t_break < self.duration,
            "t_break must precede the experiment end"
        );
        let mut dc = Datacenter::new();
        let sid = dc.add_server(self.server.clone(), Celsius::new(self.ambient_c), self.seed);
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(self.ambient_c), self.seed);
        for spec in &self.vms {
            sim.boot_vm_now(sid, spec.clone())
                .expect("experiment VM placement failed");
        }
        let snapshot = ConfigSnapshot::capture(&sim, sid, Celsius::new(self.ambient_c));
        let initial_temp = sim
            .datacenter()
            .server(sid)
            .expect("server")
            .die_temperature();

        sim.run_until(SimTime::ZERO + self.duration);

        let trace = sim.trace(sid).expect("trace").clone();
        let break_at = SimTime::ZERO + self.t_break;
        let psi_stable = trace
            .sensor_c
            .mean_after(break_at)
            .expect("samples after t_break");
        let true_stable = trace
            .die_c
            .mean_after(break_at)
            .expect("samples after t_break");

        ExperimentOutcome {
            snapshot,
            psi_stable,
            true_stable,
            initial_temp,
            sensor_series: trace.sensor_c,
            die_series: trace.die_c,
        }
    }
}

/// The result of one experiment: the Eq. (2) record plus full series for
/// dynamic-prediction studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// The input side of the record.
    pub snapshot: ConfigSnapshot,
    /// ψ_stable from the *sensor* (Eq. 1) — the training target.
    pub psi_stable: f64,
    /// Stable mean of the true die temperature — evaluation ground truth.
    pub true_stable: f64,
    /// φ(0): die temperature before the experiment started.
    pub initial_temp: f64,
    /// Sensor reading series over the whole run.
    pub sensor_series: TimeSeries,
    /// True die temperature series over the whole run.
    pub die_series: TimeSeries,
}

/// Randomised experiment cases in the paper's evaluation ranges:
/// 2–12 VMs of heterogeneous shapes/tasks, 2–6 fans, 18–28 °C ambient.
#[derive(Debug, Clone)]
pub struct CaseGenerator {
    rng: StdRng,
    min_vms: u32,
    max_vms: u32,
    min_fans: u32,
    max_fans: u32,
    ambient_range: (f64, f64),
}

impl CaseGenerator {
    /// Paper-range generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CaseGenerator {
            rng: StdRng::seed_from_u64(seed),
            min_vms: 2,
            max_vms: 12,
            min_fans: 2,
            max_fans: 6,
            ambient_range: (18.0, 28.0),
        }
    }

    /// Overrides the VM-count range (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    #[must_use]
    pub fn with_vm_range(mut self, min: u32, max: u32) -> Self {
        assert!(min > 0 && min <= max, "bad vm range {min}..={max}");
        self.min_vms = min;
        self.max_vms = max;
        self
    }

    /// Fixes the fan count (e.g. 4 for Fig. 1(c)).
    #[must_use]
    pub fn with_fixed_fans(mut self, fans: u32) -> Self {
        self.min_fans = fans;
        self.max_fans = fans;
        self
    }

    /// Samples one random VM spec.
    pub fn random_vm(&mut self, index: usize) -> VmSpec {
        // Weighted draws written as exhaustive matches over the sampled
        // index (same distribution as the former lookup tables).
        let vcpus = match self.rng.gen_range(0..5) {
            0 | 1 => 1u32,
            2 | 3 => 2,
            _ => 4,
        };
        let memory = match self.rng.gen_range(0..4) {
            0 => 2.0f64,
            1 | 2 => 4.0,
            _ => 8.0,
        };
        let task = ALL_TASK_PROFILES[self.rng.gen_range(0..ALL_TASK_PROFILES.len())];
        VmSpec::new(format!("vm-{index}"), vcpus, memory, task)
    }

    /// Samples one full experiment case. The server is the standard
    /// 16-core box with a sampled fan count; total VM memory is feasible
    /// by construction (≤ 12 VMs × 8 GB < 64 GB... not quite — the
    /// generator resamples memory-heavy sets until they fit).
    pub fn random_case(&mut self, seed: u64) -> ExperimentConfig {
        let n = self.rng.gen_range(self.min_vms..=self.max_vms);
        let fans = self.rng.gen_range(self.min_fans..=self.max_fans);
        let ambient = self
            .rng
            .gen_range(self.ambient_range.0..=self.ambient_range.1);
        let server = ServerSpec::commodity("exp", 16, 2.4, 64.0, fans);
        let mut vms: Vec<VmSpec> = (0..n).map(|i| self.random_vm(i as usize)).collect();
        // Keep total memory within the box.
        while vms.iter().map(VmSpec::memory_gb).sum::<f64>() > server.memory_gb() {
            let idx = self.rng.gen_range(0..vms.len());
            let v = &vms[idx];
            vms[idx] = VmSpec::new(v.name().to_string(), v.vcpus(), 2.0, v.task());
        }
        ExperimentConfig::new(server, vms, Celsius::new(ambient), seed)
    }

    /// Samples `count` cases with per-case seeds derived from `base_seed`.
    pub fn random_cases(&mut self, count: usize, base_seed: u64) -> Vec<ExperimentConfig> {
        (0..count)
            .map(|i| self.random_case(base_seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(n_vms: usize, seed: u64) -> ExperimentConfig {
        let server = ServerSpec::standard("t");
        let vms = (0..n_vms)
            .map(|i| VmSpec::new(format!("v{i}"), 2, 4.0, TaskProfile::CpuBound))
            .collect();
        ExperimentConfig::new(server, vms, Celsius::new(25.0), seed)
            .with_duration(SimDuration::from_secs(900))
            .with_t_break(SimDuration::from_secs(600))
    }

    #[test]
    fn experiment_produces_stable_record() {
        let outcome = quick_config(4, 1).run();
        // 8 vcpus at 90% on 16 cores ≈ 45% util; stable die ≈ 25 + P*(R).
        assert!(outcome.psi_stable > 30.0 && outcome.psi_stable < 70.0);
        // Sensor-derived ψ_stable close to ground truth.
        assert!((outcome.psi_stable - outcome.true_stable).abs() < 1.0);
        assert_eq!(outcome.snapshot.vms.len(), 4);
        assert_eq!(outcome.snapshot.total_vcpus(), 8);
        assert_eq!(outcome.initial_temp, 25.0);
    }

    #[test]
    fn psi_stable_is_mean_after_break() {
        let outcome = quick_config(2, 2).run();
        let expect = outcome
            .sensor_series
            .mean_after(SimTime::from_secs(600))
            .unwrap();
        assert_eq!(outcome.psi_stable, expect);
    }

    #[test]
    fn more_vms_run_hotter() {
        let light = quick_config(1, 3).run();
        let heavy = quick_config(8, 3).run();
        assert!(
            heavy.psi_stable > light.psi_stable + 3.0,
            "heavy {} vs light {}",
            heavy.psi_stable,
            light.psi_stable
        );
    }

    #[test]
    fn experiments_are_seed_deterministic() {
        let a = quick_config(3, 5).run();
        let b = quick_config(3, 5).run();
        assert_eq!(a.psi_stable, b.psi_stable);
        assert_eq!(a.sensor_series, b.sensor_series);
    }

    #[test]
    #[should_panic(expected = "t_break")]
    fn bad_break_panics() {
        let cfg = quick_config(1, 1)
            .with_duration(SimDuration::from_secs(100))
            .with_t_break(SimDuration::from_secs(200));
        let _ = cfg.run();
    }

    #[test]
    fn generator_respects_ranges() {
        let mut gen = CaseGenerator::new(11);
        for i in 0..30 {
            let case = gen.random_case(i);
            let n = case.vms.len();
            assert!((2..=12).contains(&n), "vm count {n}");
            let fans = case.server.fans().count();
            assert!((2..=6).contains(&fans), "fans {fans}");
            assert!((18.0..=28.0).contains(&case.ambient_c));
            let mem: f64 = case.vms.iter().map(VmSpec::memory_gb).sum();
            assert!(mem <= case.server.memory_gb());
        }
    }

    #[test]
    fn generator_with_fixed_fans() {
        let mut gen = CaseGenerator::new(3).with_fixed_fans(4);
        for i in 0..10 {
            assert_eq!(gen.random_case(i).server.fans().count(), 4);
        }
    }

    #[test]
    fn generator_is_seed_deterministic() {
        let cases_a = CaseGenerator::new(9).random_cases(5, 100);
        let cases_b = CaseGenerator::new(9).random_cases(5, 100);
        assert_eq!(cases_a, cases_b);
    }

    #[test]
    fn snapshot_aggregates() {
        let outcome = quick_config(3, 7).run();
        let s = &outcome.snapshot;
        assert_eq!(s.total_vcpus(), 6);
        assert!((s.total_vm_memory_gb() - 12.0).abs() < 1e-12);
        assert!((s.nominal_demand() - 6.0 * 0.9).abs() < 1e-9);
        assert!((s.theta_cpu - 38.4).abs() < 1e-9);
    }
}
