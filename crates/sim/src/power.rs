//! Server power draw as a function of resource utilization.
//!
//! CPU power follows the widely used affine-plus-exponent model
//! `P(u) = P_idle + (P_max − P_idle) · u^α` (α ≈ 1 is near-linear; Fan et
//! al., ISCA'07 report α in 1.0–1.4 for real servers). Memory adds a small
//! activity-proportional term. The thermal network consumes the total as
//! its heat input.

use serde::{Deserialize, Serialize};
use vmtherm_units::{Utilization, Watts};

/// CPU + memory power model for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power at zero utilization (W).
    idle_watts: f64,
    /// Power at full utilization (W).
    max_watts: f64,
    /// Utilization exponent α (1.0 = linear).
    exponent: f64,
    /// Additional power per GB of actively used memory (W/GB).
    memory_watts_per_gb: f64,
}

impl PowerModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `max_watts < idle_watts` or `exponent <= 0`.
    #[must_use]
    pub fn new(idle_watts: Watts, max_watts: Watts, exponent: f64, memory_w_per_gb: f64) -> Self {
        assert!(max_watts >= idle_watts, "max power below idle power");
        assert!(exponent > 0.0, "exponent must be positive");
        assert!(memory_w_per_gb >= 0.0, "memory power must be non-negative");
        PowerModel {
            idle_watts: idle_watts.get(),
            max_watts: max_watts.get(),
            exponent,
            memory_watts_per_gb: memory_w_per_gb,
        }
    }

    /// A model scaled for a server of `cores` cores at `ghz` each:
    /// idle ≈ 3.5 W/core + 20 W platform, max ≈ 10.5 W/core·GHz-normalised.
    /// Matches commodity 2U servers of the paper's era (dual-socket Xeon,
    /// 80–250 W span).
    #[must_use]
    pub fn for_capacity(cores: u32, ghz: f64) -> Self {
        let idle = 20.0 + 3.5 * cores as f64;
        let max = idle + 10.5 * cores as f64 * (ghz / 2.4);
        PowerModel::new(Watts::new(idle), Watts::new(max), 1.15, 0.35)
    }

    /// CPU power at aggregate utilization `u`.
    #[must_use]
    pub fn cpu_power(&self, utilization: Utilization) -> f64 {
        let u = utilization.as_fraction();
        self.idle_watts + (self.max_watts - self.idle_watts) * u.powf(self.exponent)
    }

    /// Memory power for `active_gb` gigabytes of hot memory.
    #[must_use]
    pub fn memory_power(&self, active_gb: f64) -> f64 {
        self.memory_watts_per_gb * active_gb.max(0.0)
    }

    /// Total heat input to the thermal network.
    #[must_use]
    pub fn total_power(&self, utilization: Utilization, active_memory_gb: f64) -> f64 {
        self.cpu_power(utilization) + self.memory_power(active_memory_gb)
    }

    /// Idle power (W).
    #[must_use]
    pub fn idle_watts(&self) -> f64 {
        self.idle_watts
    }

    /// Full-load CPU power (W).
    #[must_use]
    pub fn max_watts(&self) -> f64 {
        self.max_watts
    }
}

impl Default for PowerModel {
    /// A 16-core 2.4 GHz commodity server.
    fn default() -> Self {
        PowerModel::for_capacity(16, 2.4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: f64) -> Utilization {
        Utilization::saturating(v)
    }

    #[test]
    fn power_is_idle_at_zero_and_max_at_one() {
        let m = PowerModel::new(Watts::new(50.0), Watts::new(200.0), 1.2, 0.0);
        assert_eq!(m.cpu_power(Utilization::ZERO), 50.0);
        assert!((m.cpu_power(Utilization::FULL) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let m = PowerModel::default();
        let mut prev = m.cpu_power(Utilization::ZERO);
        for i in 1..=20 {
            let p = m.cpu_power(u(i as f64 / 20.0));
            assert!(p >= prev, "not monotone at {i}");
            prev = p;
        }
    }

    #[test]
    fn out_of_range_utilization_clamps() {
        let m = PowerModel::default();
        assert_eq!(m.cpu_power(u(-0.5)), m.cpu_power(Utilization::ZERO));
        assert_eq!(m.cpu_power(u(1.5)), m.cpu_power(Utilization::FULL));
    }

    #[test]
    fn memory_power_scales_linearly() {
        let m = PowerModel::new(Watts::new(10.0), Watts::new(20.0), 1.0, 0.5);
        assert_eq!(m.memory_power(8.0), 4.0);
        assert_eq!(m.memory_power(-1.0), 0.0);
    }

    #[test]
    fn total_combines_components() {
        let m = PowerModel::new(Watts::new(10.0), Watts::new(110.0), 1.0, 1.0);
        assert!((m.total_power(u(0.5), 4.0) - (10.0 + 50.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn capacity_scaling_is_monotone_in_cores_and_clock() {
        let small = PowerModel::for_capacity(8, 2.0);
        let big = PowerModel::for_capacity(32, 2.0);
        assert!(big.max_watts() > small.max_watts());
        let fast = PowerModel::for_capacity(8, 3.2);
        assert!(fast.max_watts() > small.max_watts());
    }

    #[test]
    #[should_panic(expected = "max power below idle")]
    fn invalid_span_panics() {
        let _ = PowerModel::new(Watts::new(100.0), Watts::new(50.0), 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn invalid_exponent_panics() {
        let _ = PowerModel::new(Watts::new(10.0), Watts::new(50.0), 0.0, 0.0);
    }
}
