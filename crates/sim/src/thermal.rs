//! Lumped-parameter (RC network) thermal model of one server's CPU.
//!
//! Two thermal nodes — the CPU **die** and its **heatsink** — connected by
//! conduction resistance `R_ds`, with the sink coupled to ambient air
//! through the fan-dependent convective resistance `R_sa`
//! (see [`crate::fan::FanBank::sink_resistance`]):
//!
//! ```text
//!   P ──▶ [die C_d] ──R_ds── [sink C_s] ──R_sa── ambient
//! ```
//!
//! This is the same physics the paper's RC-model baseline \[5\] assumes, and
//! it produces the first-order exponential approach to a load-dependent
//! steady state that Eq. (1)/(3) of the paper presuppose. The *simulated
//! ground truth* uses it with full knowledge of per-VM power; the paper's
//! point is that a learner must predict the steady state without that
//! knowledge.

use serde::{Deserialize, Serialize};
use vmtherm_obs::{self as obs, names};
use vmtherm_units::{Celsius, Seconds, Watts};

static OBS_SUBSTEPS: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_THERMAL_SUBSTEPS);

std::thread_local! {
    /// Substeps not yet flushed to [`OBS_SUBSTEPS`]; integrator calls are
    /// per-server per-engine-step, so the counter is batched to keep the
    /// hot path at an integer add.
    static OBS_SUBSTEP_BACKLOG: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Flush threshold for the batched substep counter.
const OBS_SUBSTEP_FLUSH: u32 = 1024;

/// Static parameters of the two-node network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Die heat capacity (J/K). Small: the die reacts in seconds.
    pub c_die: f64,
    /// Heatsink + spreader heat capacity (J/K). Large: minutes-scale.
    pub c_sink: f64,
    /// Die→sink conduction resistance (K/W).
    pub r_die_sink: f64,
}

impl ThermalParams {
    /// Validates and constructs parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn new(c_die: f64, c_sink: f64, r_die_sink: f64) -> Self {
        assert!(
            c_die > 0.0 && c_sink > 0.0 && r_die_sink > 0.0,
            "thermal params must be positive"
        );
        ThermalParams {
            c_die,
            c_sink,
            r_die_sink,
        }
    }

    /// The slowest time constant (s) of the network for a given sink
    /// resistance — roughly `C_sink · (R_sa + R_ds)`; the system is within
    /// 1% of steady state after ~5 of these.
    #[must_use]
    pub fn dominant_time_constant(&self, r_sink_amb: f64) -> f64 {
        self.c_sink * (r_sink_amb + self.r_die_sink)
    }
}

impl Default for ThermalParams {
    /// Commodity 2U server: ~7 s die time constant, ~2 min sink time
    /// constant at four medium fans, chosen so the system stabilises within
    /// the paper's `t_break = 600 s`.
    fn default() -> Self {
        ThermalParams {
            c_die: 150.0,
            c_sink: 1100.0,
            r_die_sink: 0.05,
        }
    }
}

/// Mutable thermal state: the two node temperatures (°C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// CPU die (junction) temperature — what the sensor reports.
    pub die_c: f64,
    /// Heatsink temperature.
    pub sink_c: f64,
}

impl ThermalState {
    /// Both nodes in equilibrium with the given ambient (a powered-off or
    /// long-idle machine).
    #[must_use]
    pub fn at_ambient(ambient_c: Celsius) -> Self {
        ThermalState {
            die_c: ambient_c.get(),
            sink_c: ambient_c.get(),
        }
    }
}

/// The integrating thermal network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalNetwork {
    params: ThermalParams,
    state: ThermalState,
}

/// Sanity window for simulated node temperatures (°C). Nothing in a
/// datacenter model should leave it; the integrator debug-asserts that.
const MIN_PLAUSIBLE_C: f64 = -100.0;
const MAX_PLAUSIBLE_C: f64 = 500.0;

impl ThermalNetwork {
    /// A network starting in equilibrium with `ambient_c`.
    #[must_use]
    pub fn new(params: ThermalParams, ambient_c: Celsius) -> Self {
        ThermalNetwork {
            params,
            state: ThermalState::at_ambient(ambient_c),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> ThermalState {
        self.state
    }

    /// Die temperature (°C) — the quantity the paper predicts.
    #[must_use]
    pub fn die_temperature(&self) -> f64 {
        self.state.die_c
    }

    /// Parameters.
    #[must_use]
    pub fn params(&self) -> ThermalParams {
        self.params
    }

    /// Overrides the state (e.g. to start an experiment from a prior
    /// operating point, the paper's φ(0)).
    pub fn set_state(&mut self, state: ThermalState) {
        self.state = state;
    }

    /// Advances the network by `dt_secs` under constant heat input
    /// `power_w`, ambient `ambient_c` and sink resistance `r_sink_amb`.
    ///
    /// Integrates with classic RK4, sub-stepping so the internal step never
    /// exceeds 1 s (the die time constant is ~7 s; RK4 at 1 s is deep inside
    /// its stability region and accurate to ~1e-6 K here).
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` or `r_sink_amb` is non-positive.
    pub fn step(&mut self, power_w: Watts, ambient_c: Celsius, r_sink_amb: f64, dt_secs: Seconds) {
        let dt = dt_secs.get();
        assert!(dt > 0.0, "step: non-positive dt");
        assert!(r_sink_amb > 0.0, "step: non-positive sink resistance");
        let substeps = dt.ceil().max(1.0) as usize;
        if obs::enabled() {
            OBS_SUBSTEP_BACKLOG.with(|backlog| {
                let pending = backlog.get().saturating_add(substeps as u32);
                if pending >= OBS_SUBSTEP_FLUSH {
                    OBS_SUBSTEPS.add(u64::from(pending));
                    backlog.set(0);
                } else {
                    backlog.set(pending);
                }
            });
        }
        let h = dt / substeps as f64;
        for _ in 0..substeps {
            self.state = rk4_step(
                self.params,
                self.state,
                power_w.get(),
                ambient_c.get(),
                r_sink_amb,
                h,
            );
        }
        debug_assert!(
            self.state.die_c.is_finite() && self.state.sink_c.is_finite(),
            "thermal integrator produced a non-finite temperature: {:?}",
            self.state
        );
        debug_assert!(
            (MIN_PLAUSIBLE_C..=MAX_PLAUSIBLE_C).contains(&self.state.die_c)
                && (MIN_PLAUSIBLE_C..=MAX_PLAUSIBLE_C).contains(&self.state.sink_c),
            "thermal integrator left the plausible range: {:?}",
            self.state
        );
    }

    /// Instantaneous node derivatives `(dT_die/dt, dT_sink/dt)` in °C/s
    /// at the current state under the given conditions — the quantity an
    /// event-driven scheduler thresholds to decide whether a server is
    /// close enough to steady state to sleep.
    #[must_use]
    pub fn rates(&self, power_w: Watts, ambient_c: Celsius, r_sink_amb: f64) -> (f64, f64) {
        derivatives(
            self.params,
            self.state,
            power_w.get(),
            ambient_c.get(),
            r_sink_amb,
        )
    }

    /// Closed-form steady state under constant conditions: the temperatures
    /// the network converges to as `t → ∞`.
    #[must_use]
    pub fn steady_state(
        &self,
        power_w: Watts,
        ambient_c: Celsius,
        r_sink_amb: f64,
    ) -> ThermalState {
        steady_state(self.params, power_w, ambient_c, r_sink_amb)
    }
}

/// Closed-form steady state of the two-node chain: all of `P` flows through
/// both resistances, so `T_sink = T_amb + P·R_sa` and
/// `T_die = T_sink + P·R_ds`.
#[must_use]
pub fn steady_state(
    params: ThermalParams,
    power_w: Watts,
    ambient_c: Celsius,
    r_sink_amb: f64,
) -> ThermalState {
    let sink = ambient_c.get() + power_w.get() * r_sink_amb;
    let die = sink + power_w.get() * params.r_die_sink;
    ThermalState {
        die_c: die,
        sink_c: sink,
    }
}

fn derivatives(
    p: ThermalParams,
    s: ThermalState,
    power_w: f64,
    ambient_c: f64,
    r_sa: f64,
) -> (f64, f64) {
    let q_ds = (s.die_c - s.sink_c) / p.r_die_sink;
    let q_sa = (s.sink_c - ambient_c) / r_sa;
    ((power_w - q_ds) / p.c_die, (q_ds - q_sa) / p.c_sink)
}

fn rk4_step(
    p: ThermalParams,
    s: ThermalState,
    power_w: f64,
    ambient_c: f64,
    r_sa: f64,
    h: f64,
) -> ThermalState {
    let f = |st: ThermalState| derivatives(p, st, power_w, ambient_c, r_sa);
    let k1 = f(s);
    let k2 = f(ThermalState {
        die_c: s.die_c + 0.5 * h * k1.0,
        sink_c: s.sink_c + 0.5 * h * k1.1,
    });
    let k3 = f(ThermalState {
        die_c: s.die_c + 0.5 * h * k2.0,
        sink_c: s.sink_c + 0.5 * h * k2.1,
    });
    let k4 = f(ThermalState {
        die_c: s.die_c + h * k3.0,
        sink_c: s.sink_c + h * k3.1,
    });
    ThermalState {
        die_c: s.die_c + h / 6.0 * (k1.0 + 2.0 * k2.0 + 2.0 * k3.0 + k4.0),
        sink_c: s.sink_c + h / 6.0 * (k1.1 + 2.0 * k2.1 + 2.0 * k3.1 + k4.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R_SA: f64 = 0.10; // four medium fans, roughly

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn w(v: f64) -> Watts {
        Watts::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    fn network() -> ThermalNetwork {
        ThermalNetwork::new(ThermalParams::default(), c(25.0))
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut n = network();
        n.step(Watts::ZERO, c(25.0), R_SA, s(600.0));
        assert!((n.die_temperature() - 25.0).abs() < 1e-9);
        assert!((n.state().sink_c - 25.0).abs() < 1e-9);
    }

    #[test]
    fn converges_to_closed_form_steady_state() {
        let mut n = network();
        let target = n.steady_state(w(180.0), c(25.0), R_SA);
        for _ in 0..2000 {
            n.step(w(180.0), c(25.0), R_SA, s(1.0));
        }
        assert!((n.die_temperature() - target.die_c).abs() < 1e-3);
        assert!((n.state().sink_c - target.sink_c).abs() < 1e-3);
    }

    #[test]
    fn steady_state_values_are_physical() {
        let st = steady_state(ThermalParams::default(), w(180.0), c(25.0), R_SA);
        // 25 + 180*0.10 = 43 at sink, + 180*0.05 = 52 at die.
        assert!((st.sink_c - 43.0).abs() < 1e-12);
        assert!((st.die_c - 52.0).abs() < 1e-12);
    }

    #[test]
    fn warming_is_monotone_from_cold_start() {
        let mut n = network();
        let mut prev = n.die_temperature();
        for _ in 0..600 {
            n.step(w(150.0), c(25.0), R_SA, s(1.0));
            let t = n.die_temperature();
            assert!(t >= prev - 1e-9, "die cooled while warming up");
            prev = t;
        }
    }

    #[test]
    fn cooling_after_load_drop() {
        let mut n = network();
        for _ in 0..1200 {
            n.step(w(200.0), c(25.0), R_SA, s(1.0));
        }
        let hot = n.die_temperature();
        for _ in 0..1200 {
            n.step(w(50.0), c(25.0), R_SA, s(1.0));
        }
        assert!(n.die_temperature() < hot - 5.0);
    }

    #[test]
    fn step_size_invariance() {
        // Integrating 300 s in one call or in 300 calls must agree closely.
        let mut a = network();
        let mut b = network();
        a.step(w(170.0), c(22.0), R_SA, s(300.0));
        for _ in 0..300 {
            b.step(w(170.0), c(22.0), R_SA, s(1.0));
        }
        assert!((a.die_temperature() - b.die_temperature()).abs() < 1e-6);
    }

    #[test]
    fn whole_second_steps_compose_bitwise() {
        // The event-driven engine relies on this exactly: integrating a
        // whole-second interval in one call sub-steps at h = 1 s, the
        // same h the dense loop uses, so the RK4 sequence is *bitwise*
        // identical — not merely close — under constant inputs.
        let mut a = network();
        let mut b = network();
        a.step(w(170.0), c(22.0), R_SA, s(300.0));
        for _ in 0..300 {
            b.step(w(170.0), c(22.0), R_SA, s(1.0));
        }
        assert_eq!(a.state().die_c.to_bits(), b.state().die_c.to_bits());
        assert_eq!(a.state().sink_c.to_bits(), b.state().sink_c.to_bits());
    }

    #[test]
    fn rates_match_finite_differences_near_equilibrium() {
        let mut n = network();
        n.step(w(150.0), c(25.0), R_SA, s(3000.0));
        // Deep in steady state both derivatives are tiny...
        let (d_die, d_sink) = n.rates(w(150.0), c(25.0), R_SA);
        assert!(d_die.abs() < 1e-3 && d_sink.abs() < 1e-3);
        // ...and from a cold start under load, strongly positive.
        let cold = network();
        let (d_die, d_sink) = cold.rates(w(150.0), c(25.0), R_SA);
        assert!(d_die > 0.1, "die rate {d_die}");
        assert!(d_sink >= 0.0, "sink rate {d_sink}");
    }

    #[test]
    fn higher_ambient_raises_stable_temperature() {
        let p = ThermalParams::default();
        let cold = steady_state(p, w(150.0), c(18.0), R_SA);
        let warm = steady_state(p, w(150.0), c(28.0), R_SA);
        assert!((warm.die_c - cold.die_c - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lower_sink_resistance_cools_the_die() {
        let p = ThermalParams::default();
        let few_fans = steady_state(p, w(150.0), c(25.0), 0.15);
        let many_fans = steady_state(p, w(150.0), c(25.0), 0.08);
        assert!(many_fans.die_c < few_fans.die_c);
    }

    #[test]
    fn settles_within_break_time_at_typical_fan_levels() {
        // The paper's t_break = 600 s; with defaults and 4 medium fans the
        // die must be within 1.5 °C of steady state by then.
        let mut n = network();
        let target = n.steady_state(w(180.0), c(25.0), R_SA).die_c;
        for _ in 0..600 {
            n.step(w(180.0), c(25.0), R_SA, s(1.0));
        }
        assert!(
            (n.die_temperature() - target).abs() < 1.5,
            "not settled: {} vs {}",
            n.die_temperature(),
            target
        );
    }

    #[test]
    fn dominant_time_constant_matches_observed_settling() {
        let p = ThermalParams::default();
        let tau = p.dominant_time_constant(R_SA);
        assert!((100.0..300.0).contains(&tau), "tau = {tau}");
    }

    #[test]
    #[should_panic(expected = "non-positive dt")]
    fn zero_dt_panics() {
        network().step(w(100.0), c(25.0), R_SA, Seconds::ZERO);
    }

    #[test]
    fn set_state_overrides() {
        let mut n = network();
        n.set_state(ThermalState {
            die_c: 60.0,
            sink_c: 50.0,
        });
        assert_eq!(n.die_temperature(), 60.0);
    }
}
