//! Time-series recording: what a monitoring agent would collect from the
//! VMM and sensors.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Errors produced when recording telemetry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TelemetryError {
    /// A sample was offered with a timestamp before the last recorded one
    /// (series are monotone).
    NonMonotonicTime {
        /// Timestamp of the last recorded sample (seconds).
        last_secs: f64,
        /// Timestamp of the rejected sample (seconds).
        new_secs: f64,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::NonMonotonicTime {
                last_secs,
                new_secs,
            } => write!(
                f,
                "time series going backwards: {new_secs} after {last_secs}"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// A time-stamped scalar series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::NonMonotonicTime`] (recording nothing) if
    /// `t` precedes the last sample — series are monotone.
    pub fn push(&mut self, t: SimTime, value: f64) -> Result<(), TelemetryError> {
        let secs = t.as_secs_f64();
        if let Some(last) = self.times.last() {
            if secs < *last {
                return Err(TelemetryError::NonMonotonicTime {
                    last_secs: *last,
                    new_secs: secs,
                });
            }
        }
        self.times.push(secs);
        self.values.push(value);
        Ok(())
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps (seconds).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(time_secs, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Mean of the values sampled at or after `from` — Eq. (1)'s
    /// "average CPU temperature after `t_break`". Returns `None` if no
    /// samples qualify.
    #[must_use]
    pub fn mean_after(&self, from: SimTime) -> Option<f64> {
        let from = from.as_secs_f64();
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= from {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// The value at or immediately before `t` (step interpolation), or
    /// `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let secs = t.as_secs_f64();
        match self.times.partition_point(|x| *x <= secs) {
            0 => None,
            n => Some(self.values[n - 1]),
        }
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<(f64, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Minimum and maximum values, or `None` when empty.
    #[must_use]
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &self.values {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        Some((lo, hi))
    }

    /// Serialises as two-column CSV with a header.
    #[must_use]
    pub fn to_csv(&self, value_name: &str) -> String {
        let mut out = format!("time_s,{value_name}\n");
        for (t, v) in self.iter() {
            let _ = writeln!(out, "{t},{v}");
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    /// Collects `(time_secs, value)` pairs; out-of-order samples are
    /// silently dropped (the series stays monotone).
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            let _ = ts.push(SimTime::from_millis((t * 1000.0).round() as u64), v);
        }
        ts
    }
}

/// Everything recorded about one server during a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerTrace {
    /// Noisy quantized sensor readings — what the learner sees.
    pub sensor_c: TimeSeries,
    /// True die temperature — ground truth for evaluation.
    pub die_c: TimeSeries,
    /// Aggregate CPU utilization in `[0, 1]`.
    pub utilization: TimeSeries,
    /// Power draw (W).
    pub power_w: TimeSeries,
    /// Ambient temperature the server saw (°C).
    pub ambient_c: TimeSeries,
}

impl ServerTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ServerTrace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for s in 0..10 {
            ts.push(SimTime::from_secs(s), s as f64 * 2.0)
                .expect("monotone");
        }
        ts
    }

    #[test]
    fn push_and_len() {
        let ts = series();
        assert_eq!(ts.len(), 10);
        assert!(!ts.is_empty());
    }

    #[test]
    fn non_monotone_push_errors_without_recording() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(5), 0.0).expect("first push");
        let err = ts.push(SimTime::from_secs(4), 1.0).expect_err("backwards");
        assert_eq!(
            err,
            TelemetryError::NonMonotonicTime {
                last_secs: 5.0,
                new_secs: 4.0
            }
        );
        assert!(err.to_string().contains("backwards"));
        // The rejected sample left the series untouched.
        assert_eq!(ts.len(), 1);
        // Equal timestamps are still accepted.
        ts.push(SimTime::from_secs(5), 2.0)
            .expect("equal timestamp");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn mean_after_matches_eq1_semantics() {
        let ts = series();
        // values at t≥6: 12,14,16,18 → mean 15.
        assert_eq!(ts.mean_after(SimTime::from_secs(6)), Some(15.0));
        // Past the end: none.
        assert_eq!(ts.mean_after(SimTime::from_secs(100)), None);
        // From zero: mean of 0..18 step 2 = 9.
        assert_eq!(ts.mean_after(SimTime::ZERO), Some(9.0));
    }

    #[test]
    fn value_at_steps() {
        let ts = series();
        assert_eq!(ts.value_at(SimTime::from_secs(3)), Some(6.0));
        assert_eq!(ts.value_at(SimTime::from_millis(3500)), Some(6.0));
        assert_eq!(ts.value_at(SimTime::from_secs(999)), Some(18.0));
        let empty = TimeSeries::new();
        assert_eq!(empty.value_at(SimTime::ZERO), None);
    }

    #[test]
    fn min_max_and_last() {
        let ts = series();
        assert_eq!(ts.min_max(), Some((0.0, 18.0)));
        assert_eq!(ts.last(), Some((9.0, 18.0)));
        assert_eq!(TimeSeries::new().min_max(), None);
    }

    #[test]
    fn csv_round_numbers() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 42.5).expect("monotone");
        let csv = ts.to_csv("temp_c");
        assert_eq!(csv, "time_s,temp_c\n1,42.5\n");
    }

    #[test]
    fn from_iterator() {
        let ts: TimeSeries = vec![(0.0, 1.0), (1.5, 2.0)].into_iter().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.value_at(SimTime::from_millis(1500)), Some(2.0));
    }
}
