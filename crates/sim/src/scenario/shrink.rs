//! Greedy scenario minimization.
//!
//! Given a failing scenario and a predicate that re-runs the oracle
//! battery, [`shrink`] walks a fixed candidate ladder — drop one event,
//! halve the horizon, halve the fleet, halve the initial VM load, drop
//! one fault channel, flatten the ambient model — accepting any
//! candidate that still fails, until a full pass produces no progress
//! or the check budget runs out. The result is the smallest repro the
//! ladder can reach, ready to check into `tests/scenarios/`.
//!
//! The ladder is deterministic (no randomness, candidates tried in a
//! fixed order), so the same failing case always minimizes to the same
//! file.

use super::{oracle::OracleFailure, Scenario, ScenarioAction};
use crate::environment::AmbientModel;
use crate::time::SimDuration;

/// Shortest horizon the shrinker will propose.
const MIN_DURATION: SimDuration = SimDuration::from_secs(10);

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-failing scenario found.
    pub scenario: Scenario,
    /// The oracle failure the minimized scenario reproduces.
    pub failure: OracleFailure,
    /// Oracle-battery invocations spent.
    pub attempts: u64,
    /// Full ladder passes performed.
    pub rounds: u32,
}

/// Minimizes `initial` under `check`, which re-runs the oracle battery
/// and returns `Some(failure)` while the scenario still fails.
///
/// `initial` must currently fail (`seed_failure` is what it failed
/// with). At most `budget` check invocations are spent; whatever the
/// smallest accepted candidate is when the budget ends is returned.
pub fn shrink(
    initial: &Scenario,
    seed_failure: OracleFailure,
    budget: u64,
    check: &mut dyn FnMut(&Scenario) -> Option<OracleFailure>,
) -> ShrinkResult {
    let mut current = initial.clone();
    let mut failure = seed_failure;
    let mut attempts = 0u64;
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let mut progressed = false;
        for candidate in candidates(&current) {
            if attempts >= budget {
                return ShrinkResult {
                    scenario: current,
                    failure,
                    attempts,
                    rounds,
                };
            }
            if candidate.validate().is_err() {
                continue;
            }
            attempts += 1;
            if let Some(f) = check(&candidate) {
                current = candidate;
                failure = f;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return ShrinkResult {
                scenario: current,
                failure,
                attempts,
                rounds,
            };
        }
    }
}

/// The candidate ladder for one step, most-aggressive-first within each
/// rung: single-event drops, then structural halvings, then fault and
/// ambient simplifications.
fn candidates(scenario: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for i in 0..scenario.events.len() {
        let mut c = scenario.clone();
        c.events.remove(i);
        out.push(c);
    }
    if scenario.duration > MIN_DURATION {
        let mut c = scenario.clone();
        let halved = SimDuration::from_millis(scenario.duration.as_millis() / 2);
        c.duration = halved.max(MIN_DURATION);
        // Events past the new horizon can never fire; drop them so the
        // repro reads minimal.
        c.events
            .retain(|e| e.at.as_millis() <= c.duration.as_millis());
        out.push(c);
    }
    if scenario.servers > 1 {
        let mut c = scenario.clone();
        c.servers = scenario.servers / 2;
        c.events.retain(|e| match &e.action {
            ScenarioAction::BootVm { server, .. }
            | ScenarioAction::SetFanSpeed { server, .. }
            | ScenarioAction::FailFans { server, .. } => *server < c.servers,
            ScenarioAction::Migrate { dest, .. } => *dest < c.servers,
            ScenarioAction::StopVm { .. } | ScenarioAction::SetAmbient { .. } => true,
        });
        out.push(c);
    }
    if scenario.vms_per_server > 0 {
        let mut c = scenario.clone();
        c.vms_per_server = scenario.vms_per_server / 2;
        out.push(c);
    }
    let plan = &scenario.fault;
    for channel in 0..5 {
        let mut c = scenario.clone();
        let dropped = match channel {
            0 => {
                c.fault.dropout = None;
                plan.dropout.is_some()
            }
            1 => {
                c.fault.stuck = None;
                plan.stuck.is_some()
            }
            2 => {
                c.fault.spike = None;
                plan.spike.is_some()
            }
            3 => {
                c.fault.jitter = None;
                plan.jitter.is_some()
            }
            _ => {
                c.fault.lost_events = None;
                plan.lost_events.is_some()
            }
        };
        if dropped {
            out.push(c);
        }
    }
    if !matches!(scenario.ambient, AmbientModel::Fixed(_)) {
        let mut c = scenario.clone();
        c.ambient = AmbientModel::Fixed(24.0);
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioEvent;
    use crate::time::SimTime;
    use crate::workload::TaskProfile;

    fn failure() -> OracleFailure {
        OracleFailure {
            oracle: "test",
            detail: "synthetic".to_string(),
        }
    }

    /// A predicate that keeps failing as long as a particular event
    /// survives — shrinking must isolate exactly that event.
    #[test]
    fn shrinks_to_the_triggering_event() {
        let mut scenario = Scenario::quiet("shrink-me", 1, 8, SimDuration::from_secs(600));
        scenario.vms_per_server = 4;
        for i in 0..10u64 {
            scenario.events.push(ScenarioEvent {
                at: SimTime::from_secs(10 + i),
                action: if i == 0 {
                    ScenarioAction::SetAmbient {
                        model: AmbientModel::Fixed(35.0),
                    }
                } else {
                    ScenarioAction::BootVm {
                        server: (i as usize) % 8,
                        vcpus: 1,
                        memory_gb: 2.0,
                        task: TaskProfile::Idle,
                    }
                },
            });
        }
        let mut checks = 0u64;
        let result = shrink(&scenario, failure(), 10_000, &mut |c| {
            checks += 1;
            c.events
                .iter()
                .any(|e| matches!(e.action, ScenarioAction::SetAmbient { .. }))
                .then(failure)
        });
        assert_eq!(result.scenario.events.len(), 1);
        assert!(matches!(
            result.scenario.events[0].action,
            ScenarioAction::SetAmbient { .. }
        ));
        assert_eq!(result.scenario.servers, 1);
        assert_eq!(result.scenario.vms_per_server, 0);
        assert_eq!(result.scenario.duration, MIN_DURATION);
        assert_eq!(result.attempts, checks);
    }

    #[test]
    fn budget_bounds_check_invocations() {
        let scenario = {
            let mut s = Scenario::quiet("budgeted", 1, 4, SimDuration::from_secs(120));
            for i in 0..6u64 {
                s.events.push(ScenarioEvent {
                    at: SimTime::from_secs(10 + i),
                    action: ScenarioAction::StopVm { vm: i },
                });
            }
            s
        };
        let mut checks = 0u64;
        let result = shrink(&scenario, failure(), 3, &mut |_| {
            checks += 1;
            Some(failure())
        });
        assert!(checks <= 3);
        assert!(result.attempts <= 3);
    }

    #[test]
    fn shrink_is_deterministic() {
        let mut scenario = Scenario::quiet("det", 2, 4, SimDuration::from_secs(300));
        for i in 0..8u64 {
            scenario.events.push(ScenarioEvent {
                at: SimTime::from_secs(20 + i * 5),
                action: ScenarioAction::StopVm { vm: i },
            });
        }
        scenario.vms_per_server = 2;
        let predicate = |c: &Scenario| (c.events.len() >= 2).then(failure);
        let a = shrink(&scenario, failure(), 1_000, &mut predicate.clone());
        let b = shrink(&scenario, failure(), 1_000, &mut predicate.clone());
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.attempts, b.attempts);
    }
}
