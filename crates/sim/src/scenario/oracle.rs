//! The differential-oracle battery a scenario must survive.
//!
//! Each oracle is a property the engine already promises:
//!
//! * **determinism** — the same scenario run twice produces bit-identical
//!   telemetry, delivered streams and fault counters (per clock mode);
//! * **clock-equivalence** — fixed and event clocks reach the same
//!   physical end state bit-for-bit (PR 9's sparse wake-up guarantee);
//! * **shard-identity** — any (threads, shards) grid reproduces the
//!   single-threaded run bit-for-bit (PR 8's merge guarantee);
//! * **clean-path** — with every fault channel disabled, installing the
//!   no-op injector changes nothing observable;
//! * **invariants** — physical sanity: finite values, plausible die
//!   temperatures, monotone timestamps, utilization in `[0, 1]`, sparse
//!   stepping never exceeding the dense step count.
//!
//! Fingerprints fold `f64::to_bits` words through FNV-1a, the same idiom
//! the fleet and event benches use, so "equal" always means bit-equal
//! and never "close enough".

use super::Scenario;
use crate::engine::{ClockMode, Simulation};
use crate::error::SimError;
use crate::server::ServerId;
use crate::telemetry::TimeSeries;

/// Die-temperature sanity floor (°C) for the invariant oracle.
const DIE_FLOOR: f64 = -10.0;
/// Die-temperature sanity ceiling (°C); far above any plausible
/// operating point but below values that indicate integration blow-up.
const DIE_CEILING: f64 = 130.0;

/// Which runs the battery performs.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// `(threads, shards)` grids checked for bit-identity against the
    /// single-threaded baseline, in both clock modes.
    pub grids: Vec<(usize, usize)>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            grids: vec![(2, 3), (3, 5)],
        }
    }
}

/// One violated property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// Which oracle tripped (`determinism`, `clock-equivalence`,
    /// `shard-identity`, `clean-path`, `invariants`).
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Outcome of one scenario's trip through the battery.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Every violated property (empty = pass).
    pub failures: Vec<OracleFailure>,
    /// Event-mode skip factor observed on the baseline event run
    /// (1.0 = no sparse wake-up benefit).
    pub event_skip_factor: f64,
}

impl ScenarioReport {
    /// True when no oracle tripped.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// FNV-1a over 64-bit words; `f64`s are folded via `to_bits` so the
/// digest is sensitive to every last mantissa bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, word: u64) {
        self.0 ^= word;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn write_f64(&mut self, value: f64) {
        self.write(value.to_bits());
    }
    fn write_series(&mut self, series: &TimeSeries) {
        self.write(series.len() as u64);
        for (t, v) in series.iter() {
            self.write_f64(t);
            self.write_f64(v);
        }
    }
}

/// Builds and runs a scenario to its horizon under one configuration.
///
/// # Errors
///
/// Build/validation errors; the run itself cannot fail.
pub fn run_to_end(
    scenario: &Scenario,
    clock: ClockMode,
    threads: usize,
    shards: usize,
) -> Result<Simulation, SimError> {
    let mut sim = scenario.build(clock)?;
    sim.set_threads(threads);
    sim.set_shards(shards);
    sim.run_until(crate::time::SimTime::ZERO + scenario.duration);
    Ok(sim)
}

/// Digest of the *physical* end state only: die temperatures, last
/// power and utilization per server, and total room heat. This is the
/// quantity the fixed and event clocks promise to agree on (their
/// telemetry densities legitimately differ).
#[must_use]
pub fn physical_fingerprint(sim: &Simulation) -> u64 {
    let mut fnv = Fnv::new();
    let dc = sim.datacenter();
    fnv.write(dc.len() as u64);
    for i in 0..dc.len() {
        if let Ok(server) = dc.server(ServerId::new(i)) {
            fnv.write(server.vm_count() as u64);
            fnv.write_f64(server.die_temperature());
            fnv.write_f64(server.last_power());
            fnv.write_f64(server.last_utilization());
        }
    }
    fnv.write_f64(dc.room_heat_kw());
    fnv.0
}

/// Digest of everything fault-independent: physical end state, full
/// telemetry traces and the event log. Used by the clean-path oracle,
/// where one side has no injector installed at all (and therefore no
/// delivered stream to compare).
#[must_use]
pub fn clean_fingerprint(sim: &Simulation) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write(physical_fingerprint(sim));
    let dc = sim.datacenter();
    for i in 0..dc.len() {
        if let Ok(trace) = sim.trace(ServerId::new(i)) {
            fnv.write_series(&trace.sensor_c);
            fnv.write_series(&trace.die_c);
            fnv.write_series(&trace.utilization);
            fnv.write_series(&trace.power_w);
            fnv.write_series(&trace.ambient_c);
        }
    }
    fnv.write(sim.log().len() as u64);
    for (at, event) in sim.log() {
        fnv.write(at.as_millis());
        for b in format!("{event:?}").bytes() {
            fnv.write(u64::from(b));
        }
    }
    fnv.0
}

/// Digest of the complete observable run: [`clean_fingerprint`] plus
/// the delivered (post-fault) streams and fault counters. Two runs of
/// the same configuration must agree on this exactly.
#[must_use]
pub fn full_fingerprint(sim: &Simulation) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write(clean_fingerprint(sim));
    let dc = sim.datacenter();
    for i in 0..dc.len() {
        match sim.delivered(ServerId::new(i)) {
            Some(stream) => {
                fnv.write(stream.len() as u64);
                for (t, v) in stream {
                    fnv.write_f64(*t);
                    fnv.write_f64(*v);
                }
            }
            None => fnv.write(u64::MAX),
        }
    }
    let stats = sim.fault_stats();
    fnv.write(stats.dropped);
    fnv.write(stats.stuck);
    fnv.write(stats.spiked);
    fnv.write(stats.jittered);
    fnv.write(stats.events_lost);
    fnv.0
}

/// Physical-sanity sweep over a finished run; pushes one failure per
/// violated invariant.
fn check_invariants(sim: &Simulation, label: &str, failures: &mut Vec<OracleFailure>) {
    let mut fail = |detail: String| {
        failures.push(OracleFailure {
            oracle: "invariants",
            detail: format!("{label}: {detail}"),
        });
    };
    let dc = sim.datacenter();
    for i in 0..dc.len() {
        if let Ok(server) = dc.server(ServerId::new(i)) {
            let die = server.die_temperature();
            if !die.is_finite() || !(DIE_FLOOR..=DIE_CEILING).contains(&die) {
                fail(format!(
                    "server {i} die temperature {die} outside sanity bounds"
                ));
            }
            let util = server.last_utilization();
            if !util.is_finite() || !(0.0..=1.0).contains(&util) {
                fail(format!("server {i} utilization {util} outside [0, 1]"));
            }
            if !server.last_power().is_finite() || server.last_power() < 0.0 {
                fail(format!(
                    "server {i} power {} not finite >= 0",
                    server.last_power()
                ));
            }
        }
        let Ok(trace) = sim.trace(ServerId::new(i)) else {
            fail(format!("server {i} has no telemetry trace"));
            continue;
        };
        let horizon = sim.now().as_secs_f64();
        let series: [(&str, &TimeSeries); 5] = [
            ("sensor_c", &trace.sensor_c),
            ("die_c", &trace.die_c),
            ("utilization", &trace.utilization),
            ("power_w", &trace.power_w),
            ("ambient_c", &trace.ambient_c),
        ];
        for (name, ts) in series {
            let mut prev = f64::NEG_INFINITY;
            for (t, v) in ts.iter() {
                if !t.is_finite() || t < prev {
                    fail(format!(
                        "server {i} {name} timestamps not monotone at t={t}"
                    ));
                    break;
                }
                if t > horizon {
                    fail(format!(
                        "server {i} {name} sample at t={t} beyond horizon {horizon}"
                    ));
                    break;
                }
                if !v.is_finite() {
                    fail(format!("server {i} {name} non-finite value at t={t}"));
                    break;
                }
                prev = t;
            }
        }
        for (t, v) in trace.die_c.iter() {
            if v.is_finite() && !(DIE_FLOOR..=DIE_CEILING).contains(&v) {
                fail(format!(
                    "server {i} die_c {v} at t={t} outside sanity bounds"
                ));
                break;
            }
        }
    }
    let mut prev = crate::time::SimTime::ZERO;
    for (at, _) in sim.log() {
        if *at < prev {
            fail(format!("event log timestamps regress at {at}"));
            break;
        }
        prev = *at;
    }
    let stats = sim.step_stats();
    if stats.server_steps > stats.dense_server_steps {
        fail(format!(
            "sparse stepping did more work than dense ({} > {})",
            stats.server_steps, stats.dense_server_steps
        ));
    }
}

/// Runs the full battery on one scenario.
///
/// # Errors
///
/// [`SimError`] when the scenario itself is invalid or unbuildable;
/// oracle violations are *not* errors — they land in
/// [`ScenarioReport::failures`].
pub fn check_scenario(
    scenario: &Scenario,
    config: &OracleConfig,
) -> Result<ScenarioReport, SimError> {
    let mut failures = Vec::new();

    let fixed = run_to_end(scenario, ClockMode::Fixed, 1, 1)?;
    check_invariants(&fixed, "fixed", &mut failures);
    let fixed_full = full_fingerprint(&fixed);
    let fixed_again = run_to_end(scenario, ClockMode::Fixed, 1, 1)?;
    if full_fingerprint(&fixed_again) != fixed_full {
        failures.push(OracleFailure {
            oracle: "determinism",
            detail: "fixed-clock rerun diverged from itself".to_string(),
        });
    }

    let event = run_to_end(scenario, ClockMode::Event, 1, 1)?;
    check_invariants(&event, "event", &mut failures);
    let event_full = full_fingerprint(&event);
    let event_again = run_to_end(scenario, ClockMode::Event, 1, 1)?;
    if full_fingerprint(&event_again) != event_full {
        failures.push(OracleFailure {
            oracle: "determinism",
            detail: "event-clock rerun diverged from itself".to_string(),
        });
    }

    if physical_fingerprint(&event) != physical_fingerprint(&fixed) {
        failures.push(OracleFailure {
            oracle: "clock-equivalence",
            detail: "fixed and event clocks reached different physical end states".to_string(),
        });
    }

    for &(threads, shards) in &config.grids {
        let grid_fixed = run_to_end(scenario, ClockMode::Fixed, threads, shards)?;
        if full_fingerprint(&grid_fixed) != fixed_full {
            failures.push(OracleFailure {
                oracle: "shard-identity",
                detail: format!("fixed clock diverged at threads={threads} shards={shards}"),
            });
        }
        let grid_event = run_to_end(scenario, ClockMode::Event, threads, shards)?;
        if full_fingerprint(&grid_event) != event_full {
            failures.push(OracleFailure {
                oracle: "shard-identity",
                detail: format!("event clock diverged at threads={threads} shards={shards}"),
            });
        }
    }

    if scenario.fault.is_noop() {
        let mut bare = scenario.build_without_fault_plan(ClockMode::Fixed)?;
        bare.run_until(crate::time::SimTime::ZERO + scenario.duration);
        if clean_fingerprint(&bare) != clean_fingerprint(&fixed) {
            failures.push(OracleFailure {
                oracle: "clean-path",
                detail: "installing the no-op fault plan changed the run".to_string(),
            });
        }
    }

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        failures,
        event_skip_factor: event.step_stats().skip_factor(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate;
    use crate::time::SimDuration;

    #[test]
    fn quiet_scenario_passes_every_oracle() {
        let scenario = Scenario::quiet("oracle-quiet", 5, 3, SimDuration::from_secs(1200));
        let report = check_scenario(&scenario, &OracleConfig::default()).expect("battery");
        assert!(
            report.passed(),
            "unexpected failures: {:?}",
            report.failures
        );
        // An idle fleet at fixed ambient is exactly where sparse
        // wake-ups pay off.
        assert!(report.event_skip_factor > 1.0);
    }

    #[test]
    fn generated_cases_pass_smoke_battery() {
        let config = OracleConfig {
            grids: vec![(2, 3)],
        };
        for index in 0..4 {
            let scenario = generate::scenario(1234, index);
            let report = check_scenario(&scenario, &config).expect("battery");
            assert!(
                report.passed(),
                "{} failed: {:?}",
                report.name,
                report.failures
            );
        }
    }

    #[test]
    fn fingerprints_are_stable_across_reruns() {
        let scenario = generate::scenario(9, 2);
        let a = run_to_end(&scenario, ClockMode::Fixed, 1, 1).expect("run");
        let b = run_to_end(&scenario, ClockMode::Fixed, 1, 1).expect("run");
        assert_eq!(full_fingerprint(&a), full_fingerprint(&b));
        assert_eq!(clean_fingerprint(&a), clean_fingerprint(&b));
        assert_eq!(physical_fingerprint(&a), physical_fingerprint(&b));
    }
}
