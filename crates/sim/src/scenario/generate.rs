//! Seeded scenario sampling for `vmtherm fuzz`.
//!
//! Every case is a pure function of `(seed, index)`: the same pair
//! always yields the same [`Scenario`], so a failing case prints as a
//! reproduction command before it is even shrunk. Cases are drawn from
//! named families mirroring the experiment taxonomy (steady fleets,
//! diurnal and scheduled ambient ramps, CRAC failure windows, flash
//! crowds, batch waves, migration churn, cooling trouble), with fault
//! channels layered on independently.

use super::{Scenario, ScenarioAction, ScenarioEvent};
use crate::environment::AmbientModel;
use crate::fan::FanSpeed;
use crate::fault::{DropoutFault, FaultPlan, JitterFault, LostEventFault, SpikeFault, StuckFault};
use crate::time::{SimDuration, SimTime};
use crate::workload::{TaskProfile, ALL_TASK_PROFILES};
use rand::{Rng, SeedableRng};

/// Scenario family labels, in sampling order (used for reports).
pub const FAMILIES: [&str; 7] = [
    "steady",
    "diurnal",
    "crac-failure",
    "flash-crowd",
    "batch",
    "migration-churn",
    "cooling-trouble",
];

/// Deterministically samples case `index` of campaign `seed`.
#[must_use]
pub fn scenario(seed: u64, index: u64) -> Scenario {
    // Mix the index in with a splitmix-style odd constant so adjacent
    // cases land in unrelated RNG streams.
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
    );
    let family = rng.gen_range(0usize..FAMILIES.len());
    let servers = rng.gen_range(2usize..=6);
    let vms_per_server = rng.gen_range(0u32..=4);
    let duration_secs = rng.gen_range(600u64..=1500);
    let mut scenario = Scenario {
        name: format!("fuzz-{seed}-{index}-{}", FAMILIES[family]),
        seed: rng.gen_range(0u64..=u64::MAX / 2),
        servers,
        vms_per_server,
        duration: SimDuration::from_secs(duration_secs),
        ambient: AmbientModel::Fixed(rng.gen_range(18.0..28.0)),
        fault: FaultPlan::none(),
        events: Vec::new(),
    };
    match family {
        1 => {
            scenario.ambient = AmbientModel::Diurnal {
                mean: rng.gen_range(20.0..26.0),
                amplitude: rng.gen_range(1.0..5.0),
                period_secs: rng.gen_range(120.0..600.0),
            };
        }
        2 => crac_failure(&mut rng, &mut scenario, duration_secs),
        3 => flash_crowd(&mut rng, &mut scenario, duration_secs),
        4 => batch_wave(&mut rng, &mut scenario, duration_secs),
        5 => migration_churn(&mut rng, &mut scenario, duration_secs),
        6 => cooling_trouble(&mut rng, &mut scenario, duration_secs),
        _ => {}
    }
    // Occasionally ramp the room through a step schedule regardless of
    // family — schedules exercise the global-clock ambient path.
    if rng.gen_range(0u32..10) == 0 {
        let step_at = rng.gen_range(60..duration_secs / 2);
        scenario.ambient = AmbientModel::step_change(
            vmtherm_units::Celsius::new(rng.gen_range(20.0..24.0)),
            vmtherm_units::Celsius::new(rng.gen_range(26.0..32.0)),
            SimTime::from_secs(step_at),
        );
    }
    sample_faults(&mut rng, &mut scenario);
    churn(&mut rng, &mut scenario, duration_secs);
    scenario.events.sort_by_key(|e| e.at);
    scenario
}

/// CRAC outage: swap to a hot fixed room mid-run, restore later. The
/// restore is omitted sometimes so thermal runaway reaches the horizon.
fn crac_failure(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    scenario.ambient = AmbientModel::Crac {
        setpoint: rng.gen_range(19.0..23.0),
        degrees_per_kw: rng.gen_range(0.5..2.0),
    };
    let fail_at = rng.gen_range(60..duration_secs / 2);
    scenario.events.push(ScenarioEvent {
        at: SimTime::from_secs(fail_at),
        action: ScenarioAction::SetAmbient {
            model: AmbientModel::Fixed(rng.gen_range(30.0..40.0)),
        },
    });
    if rng.gen_range(0u32..4) != 0 {
        let recover_at = rng.gen_range(fail_at + 30..duration_secs);
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(recover_at),
            action: ScenarioAction::SetAmbient {
                model: AmbientModel::Fixed(rng.gen_range(20.0..24.0)),
            },
        });
    }
}

/// Flash crowd: a burst of small web-server VMs lands within seconds.
fn flash_crowd(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    let start = rng.gen_range(60..duration_secs / 2);
    let burst = rng.gen_range(3u64..=8);
    for i in 0..burst {
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(start + i * rng.gen_range(1u64..=3)),
            action: ScenarioAction::BootVm {
                server: rng.gen_range(0..scenario.servers),
                vcpus: 1,
                memory_gb: 2.0,
                task: TaskProfile::WebServer,
            },
        });
    }
}

/// Batch wave: bursty workers boot together and stop before the end.
fn batch_wave(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    let start = rng.gen_range(60..duration_secs / 3);
    let stop = rng.gen_range(duration_secs / 2..duration_secs);
    let workers = rng.gen_range(2u64..=5);
    let first_id = scenario.initial_vms();
    for i in 0..workers {
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(start),
            action: ScenarioAction::BootVm {
                server: (i as usize) % scenario.servers,
                vcpus: 2,
                memory_gb: 4.0,
                task: TaskProfile::Bursty,
            },
        });
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(stop),
            action: ScenarioAction::StopVm { vm: first_id + i },
        });
    }
}

/// Migration churn: existing VMs hop between hosts.
fn migration_churn(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    scenario.vms_per_server = scenario.vms_per_server.max(1);
    let moves = rng.gen_range(2u64..=6);
    for _ in 0..moves {
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(rng.gen_range(60..duration_secs)),
            action: ScenarioAction::Migrate {
                vm: rng.gen_range(0..scenario.initial_vms()),
                dest: rng.gen_range(0..scenario.servers),
            },
        });
    }
}

/// Cooling trouble: fan failures and manual speed overrides.
fn cooling_trouble(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    let victims = rng.gen_range(1usize..=scenario.servers.min(3));
    for _ in 0..victims {
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(rng.gen_range(60..duration_secs)),
            action: ScenarioAction::FailFans {
                server: rng.gen_range(0..scenario.servers),
                count: rng.gen_range(1u32..=2),
            },
        });
    }
    if rng.gen_range(0u32..2) == 0 {
        let speed = [FanSpeed::Low, FanSpeed::Medium, FanSpeed::High][rng.gen_range(0usize..3)];
        scenario.events.push(ScenarioEvent {
            at: SimTime::from_secs(rng.gen_range(60..duration_secs)),
            action: ScenarioAction::SetFanSpeed {
                server: rng.gen_range(0..scenario.servers),
                speed,
            },
        });
    }
}

/// Layers independent telemetry fault channels onto roughly half of all
/// cases (the clean half keeps the clean-path oracle honest).
fn sample_faults(rng: &mut impl Rng, scenario: &mut Scenario) {
    if rng.gen_range(0u32..2) == 0 {
        return;
    }
    let mut plan = FaultPlan::new(rng.gen_range(0u64..=u64::MAX / 2));
    if rng.gen_range(0u32..3) == 0 {
        if let Ok(d) = DropoutFault::random(
            rng.gen_range(0.005..0.05),
            vmtherm_units::Seconds::new(2.0),
            vmtherm_units::Seconds::new(rng.gen_range(4.0..15.0)),
        ) {
            plan = plan.with_dropout(d);
        }
    }
    if rng.gen_range(0u32..3) == 0 {
        if let Ok(s) = StuckFault::random(
            rng.gen_range(0.005..0.03),
            vmtherm_units::Seconds::new(2.0),
            vmtherm_units::Seconds::new(rng.gen_range(4.0..12.0)),
        ) {
            plan = plan.with_stuck(s);
        }
    }
    if rng.gen_range(0u32..3) == 0 {
        if let Ok(s) = SpikeFault::random(
            rng.gen_range(0.005..0.05),
            vmtherm_units::Celsius::new(2.0),
            vmtherm_units::Celsius::new(rng.gen_range(4.0..10.0)),
        ) {
            plan = plan.with_spike(s);
        }
    }
    if rng.gen_range(0u32..3) == 0 {
        if let Ok(j) = JitterFault::random(
            rng.gen_range(0.01..0.2),
            vmtherm_units::Seconds::new(rng.gen_range(0.1..1.5)),
        ) {
            plan = plan.with_jitter(j);
        }
    }
    if rng.gen_range(0u32..4) == 0 {
        if let Ok(l) = LostEventFault::random(rng.gen_range(0.01..0.2)) {
            plan = plan.with_lost_events(l);
        }
    }
    scenario.fault = plan;
}

/// Background churn every family gets: occasional boots, stops and fan
/// tweaks so quiet scenarios still cross wake/sleep boundaries.
fn churn(rng: &mut impl Rng, scenario: &mut Scenario, duration_secs: u64) {
    let extra = rng.gen_range(0u32..=3);
    for _ in 0..extra {
        let at = SimTime::from_secs(rng.gen_range(60..duration_secs));
        let action = match rng.gen_range(0u32..4) {
            0 => ScenarioAction::BootVm {
                server: rng.gen_range(0..scenario.servers),
                vcpus: rng.gen_range(1u32..=2),
                memory_gb: 2.0,
                task: ALL_TASK_PROFILES[rng.gen_range(0..ALL_TASK_PROFILES.len())],
            },
            1 if scenario.initial_vms() > 0 => ScenarioAction::StopVm {
                vm: rng.gen_range(0..scenario.initial_vms()),
            },
            2 if scenario.initial_vms() > 0 => ScenarioAction::Migrate {
                vm: rng.gen_range(0..scenario.initial_vms()),
                dest: rng.gen_range(0..scenario.servers),
            },
            _ => ScenarioAction::SetAmbient {
                model: AmbientModel::Fixed(rng.gen_range(20.0..30.0)),
            },
        };
        scenario.events.push(ScenarioEvent { at, action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for index in 0..32 {
            assert_eq!(scenario(42, index), scenario(42, index));
        }
        assert_ne!(scenario(42, 0), scenario(43, 0));
    }

    #[test]
    fn generated_cases_validate() {
        for index in 0..64 {
            let s = scenario(7, index);
            s.validate()
                .unwrap_or_else(|e| panic!("generated scenario {} failed validation: {e}", s.name));
        }
    }

    #[test]
    fn families_are_all_reachable() {
        let mut seen = [false; FAMILIES.len()];
        for index in 0..256 {
            let s = scenario(11, index);
            for (i, family) in FAMILIES.iter().enumerate() {
                if s.name.ends_with(family) {
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&f| f), "unreached families: {seen:?}");
    }
}
