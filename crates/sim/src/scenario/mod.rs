//! Declarative simulation scenarios: a serializable description of one
//! fleet run — ambient profile, initial VM placement, scheduled
//! reconfigurations and telemetry faults — that builds a ready-to-step
//! [`Simulation`].
//!
//! A [`Scenario`] is the unit of the correctness-tooling layer: the
//! seeded [`generate`] module samples them, the [`oracle`] battery runs
//! each one under differential oracles (fixed-vs-event clock equality,
//! threads×shards bit-identity, physical invariants), and the [`shrink`]
//! module minimizes any failing case to a smallest repro that is checked
//! into `tests/scenarios/*.json` and replayed forever as a regression
//! test.
//!
//! Scenarios serialize to plain JSON through [`vmtherm_obs::json`] (the
//! workspace's vendored `serde` is marker-only, so the codec here is
//! explicit). The schema is versioned; parsing is strict — unknown
//! schema versions and out-of-domain values are errors, not guesses —
//! so a checked-in repro can never silently drift into meaning a
//! different run.

pub mod generate;
pub mod oracle;
pub mod shrink;

use crate::datacenter::Datacenter;
use crate::engine::{ClockMode, Event, Simulation};
use crate::environment::AmbientModel;
use crate::error::SimError;
use crate::fan::FanSpeed;
use crate::fault::{DropoutFault, FaultPlan, JitterFault, LostEventFault, SpikeFault, StuckFault};
use crate::server::{ServerId, ServerSpec};
use crate::time::{SimDuration, SimTime};
use crate::vm::{VmId, VmSpec};
use crate::workload::{TaskProfile, ALL_TASK_PROFILES};
use vmtherm_obs::json::{self, Json};
use vmtherm_units::Celsius;

/// Current scenario JSON schema version.
pub const SCENARIO_SCHEMA: u64 = 1;

/// Hard ceilings keeping any scenario replayable in test time. The
/// generator samples well inside these; the parser rejects anything
/// outside so a hand-edited corpus file cannot stall CI.
pub const MAX_SERVERS: usize = 64;
/// Most initial VMs per server ([`MAX_SERVERS`] documents the family).
pub const MAX_VMS_PER_SERVER: u32 = 8;
/// Longest scenario (simulated time).
pub const MAX_DURATION: SimDuration = SimDuration::from_secs(4 * 3600);
/// Most scheduled events.
pub const MAX_EVENTS: usize = 256;

/// One scheduled reconfiguration inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: ScenarioAction,
}

/// A scenario-level action, mapped onto an engine [`Event`] at build
/// time. VM ids are global boot ordinals: the initial placement boots
/// ids `0..servers×vms_per_server` in server-major order, and scheduled
/// `BootVm` actions take the next ids in schedule order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioAction {
    /// Boot a VM on a server.
    BootVm {
        /// Target host index.
        server: usize,
        /// vCPU count (≥ 1).
        vcpus: u32,
        /// Memory footprint in GB (> 0).
        memory_gb: f64,
        /// Workload profile.
        task: TaskProfile,
    },
    /// Stop a VM by boot ordinal.
    StopVm {
        /// Global VM ordinal.
        vm: u64,
    },
    /// Live-migrate a VM to a destination server.
    Migrate {
        /// Global VM ordinal.
        vm: u64,
        /// Destination host index.
        dest: usize,
    },
    /// Change a server's fan speed.
    SetFanSpeed {
        /// Target host index.
        server: usize,
        /// New level.
        speed: FanSpeed,
    },
    /// Fail `count` more of a server's fans.
    FailFans {
        /// Target host index.
        server: usize,
        /// Fans to stop.
        count: u32,
    },
    /// Replace the room ambient model (CRAC failure and recovery are a
    /// pair of these: swap to a hot fixed model, swap back later).
    SetAmbient {
        /// The replacement model.
        model: AmbientModel,
    },
}

/// A complete, self-contained description of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Corpus-unique identifier (used in file names and reports).
    pub name: String,
    /// Seed for the simulation (server sensors, VM workloads).
    pub seed: u64,
    /// Fleet size.
    pub servers: usize,
    /// Initial VMs booted per server (task profiles rotate
    /// deterministically from the seed).
    pub vms_per_server: u32,
    /// How long the scenario runs.
    pub duration: SimDuration,
    /// Room ambient model at t = 0.
    pub ambient: AmbientModel,
    /// Telemetry fault plan ([`FaultPlan::is_noop`] for a clean run).
    pub fault: FaultPlan,
    /// Scheduled reconfigurations.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// A minimal clean scenario: `servers` idle hosts at a fixed 24 °C
    /// ambient, no VMs, no events, no faults.
    #[must_use]
    pub fn quiet(name: &str, seed: u64, servers: usize, duration: SimDuration) -> Self {
        Scenario {
            name: name.to_string(),
            seed,
            servers,
            vms_per_server: 0,
            duration,
            ambient: AmbientModel::Fixed(24.0),
            fault: FaultPlan::none(),
            events: Vec::new(),
        }
    }

    /// Checks every domain constraint the builder and the corpus rely
    /// on.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.name.is_empty() || !self.name.bytes().all(is_name_byte) {
            return Err(SimError::invalid(
                "scenario.name",
                format!(
                    "`{}` must be nonempty [A-Za-z0-9._-] (it names corpus files)",
                    self.name
                ),
            ));
        }
        if self.servers == 0 || self.servers > MAX_SERVERS {
            return Err(SimError::invalid(
                "scenario.servers",
                format!("need 1..={MAX_SERVERS}, got {}", self.servers),
            ));
        }
        if self.vms_per_server > MAX_VMS_PER_SERVER {
            return Err(SimError::invalid(
                "scenario.vms_per_server",
                format!("need <= {MAX_VMS_PER_SERVER}, got {}", self.vms_per_server),
            ));
        }
        if self.duration.is_zero() || self.duration > MAX_DURATION {
            return Err(SimError::invalid(
                "scenario.duration",
                format!("need 0 < duration <= {MAX_DURATION}, got {}", self.duration),
            ));
        }
        if self.events.len() > MAX_EVENTS {
            return Err(SimError::invalid(
                "scenario.events",
                format!("need <= {MAX_EVENTS} events, got {}", self.events.len()),
            ));
        }
        check_ambient("scenario.ambient", &self.ambient)?;
        for (i, event) in self.events.iter().enumerate() {
            let field = "scenario.events";
            match &event.action {
                ScenarioAction::BootVm {
                    server,
                    vcpus,
                    memory_gb,
                    ..
                } => {
                    check_server_index(field, i, *server, self.servers)?;
                    if *vcpus == 0 {
                        return Err(SimError::invalid(field, format!("event {i}: zero vcpus")));
                    }
                    if !(*memory_gb > 0.0) || !memory_gb.is_finite() {
                        return Err(SimError::invalid(
                            field,
                            format!("event {i}: memory_gb {memory_gb} not positive finite"),
                        ));
                    }
                }
                ScenarioAction::StopVm { .. } => {}
                ScenarioAction::Migrate { dest, .. } => {
                    check_server_index(field, i, *dest, self.servers)?;
                }
                ScenarioAction::SetFanSpeed { server, .. }
                | ScenarioAction::FailFans { server, .. } => {
                    check_server_index(field, i, *server, self.servers)?;
                }
                ScenarioAction::SetAmbient { model } => check_ambient(field, model)?,
            }
        }
        // Delegate fault-plan domain checks to the injector's validator
        // without paying for channel state construction on noop plans.
        if !self.fault.is_noop() {
            crate::fault::FaultInjector::new(self.fault.clone())?;
        }
        Ok(())
    }

    /// Number of VMs booted before the clock starts.
    #[must_use]
    pub fn initial_vms(&self) -> u64 {
        self.servers as u64 * u64::from(self.vms_per_server)
    }

    /// Builds the ready-to-step simulation: fleet, initial VMs, fault
    /// plan and scheduled events, with the requested clock mode.
    ///
    /// # Errors
    ///
    /// Validation errors, or placement errors from the initial VM boot
    /// (the generator and corpus never overfill a server; a hand-written
    /// scenario that does is rejected here, deterministically).
    pub fn build(&self, clock: ClockMode) -> Result<Simulation, SimError> {
        self.build_inner(clock, true)
    }

    /// [`Scenario::build`] but *never* installing a fault injector, even
    /// the no-op plan. With all channels disabled the two paths must be
    /// byte-identical — the clean-path oracle in [`oracle`] holds this.
    ///
    /// # Errors
    ///
    /// As [`Scenario::build`]; a non-noop plan cannot skip installation.
    pub fn build_without_fault_plan(&self, clock: ClockMode) -> Result<Simulation, SimError> {
        if !self.fault.is_noop() {
            return Err(SimError::invalid(
                "scenario.fault",
                "build_without_fault_plan requires a noop plan".to_string(),
            ));
        }
        self.build_inner(clock, false)
    }

    fn build_inner(&self, clock: ClockMode, install_plan: bool) -> Result<Simulation, SimError> {
        self.validate()?;
        let dc = Datacenter::homogeneous(
            &ServerSpec::standard("sc"),
            self.servers,
            4,
            Celsius::new(24.0),
            self.seed,
        );
        let mut sim = Simulation::new(dc, self.ambient.clone(), self.seed).with_clock(clock);
        if install_plan {
            sim.set_fault_plan(self.fault.clone())?;
        }
        for s in 0..self.servers {
            for j in 0..self.vms_per_server {
                let pick = (self.seed as usize)
                    .wrapping_add(s.wrapping_mul(3))
                    .wrapping_add(j as usize)
                    % ALL_TASK_PROFILES.len();
                let task = ALL_TASK_PROFILES[pick];
                let vcpus = 1 + (j % 2);
                sim.boot_vm_now(
                    ServerId::new(s),
                    VmSpec::new(format!("i{s}-{j}"), vcpus, 2.0, task),
                )?;
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            sim.schedule(event.at, self.engine_event(i, &event.action));
        }
        Ok(sim)
    }

    /// Maps one scenario action to the engine event it schedules.
    fn engine_event(&self, index: usize, action: &ScenarioAction) -> Event {
        match action {
            ScenarioAction::BootVm {
                server,
                vcpus,
                memory_gb,
                task,
            } => Event::BootVm {
                server: ServerId::new(*server),
                spec: VmSpec::new(format!("e{index}"), *vcpus, *memory_gb, *task),
            },
            ScenarioAction::StopVm { vm } => Event::StopVm(VmId::new(*vm)),
            ScenarioAction::Migrate { vm, dest } => Event::MigrateVm {
                vm: VmId::new(*vm),
                dest: ServerId::new(*dest),
            },
            ScenarioAction::SetFanSpeed { server, speed } => Event::SetFanSpeed {
                server: ServerId::new(*server),
                speed: *speed,
            },
            ScenarioAction::FailFans { server, count } => Event::FailFans {
                server: ServerId::new(*server),
                count: *count,
            },
            ScenarioAction::SetAmbient { model } => Event::SetAmbient(model.clone()),
        }
    }

    /// Serializes to the versioned JSON document the corpus stores.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Num(SCENARIO_SCHEMA as f64)),
            ("name", Json::str(&self.name)),
            ("seed", seed_to_json(self.seed)),
            ("servers", Json::Num(self.servers as f64)),
            ("vms_per_server", Json::Num(f64::from(self.vms_per_server))),
            ("duration_ms", Json::Num(self.duration.as_millis() as f64)),
            ("ambient", ambient_to_json(&self.ambient)),
            ("fault", fault_to_json(&self.fault)),
            (
                "events",
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ),
        ])
    }

    /// Pretty-rendered JSON, ending in a newline (corpus file format).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut text = self.to_json().render_pretty();
        text.push('\n');
        text
    }

    /// Parses and validates a scenario JSON document.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for malformed JSON, an unknown schema
    /// version, missing or mistyped fields, or domain violations.
    pub fn parse(text: &str) -> Result<Scenario, SimError> {
        let doc =
            json::parse(text).map_err(|e| SimError::invalid("scenario.json", e.to_string()))?;
        let scenario = Scenario::from_json(&doc)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Decodes a parsed JSON document (no domain validation; see
    /// [`Scenario::parse`]).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for schema or type mismatches.
    pub fn from_json(doc: &Json) -> Result<Scenario, SimError> {
        let schema = get_u64(doc, "schema")?;
        if schema != SCENARIO_SCHEMA {
            return Err(SimError::invalid(
                "scenario.schema",
                format!("unknown schema version {schema} (supported: {SCENARIO_SCHEMA})"),
            ));
        }
        let events = match doc.get("events") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(event_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(bad("events", "must be an array")),
            None => Vec::new(),
        };
        Ok(Scenario {
            name: get_str(doc, "name")?.to_string(),
            seed: get_seed(doc, "seed")?,
            servers: get_u64(doc, "servers")? as usize,
            vms_per_server: u32::try_from(get_u64(doc, "vms_per_server")?)
                .map_err(|_| bad("vms_per_server", "out of u32 range"))?,
            duration: SimDuration::from_millis(get_u64(doc, "duration_ms")?),
            ambient: ambient_from_json(doc.get("ambient").unwrap_or(&Json::Null))?,
            fault: fault_from_json(doc.get("fault").unwrap_or(&Json::Null))?,
            events,
        })
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'
}

fn check_server_index(
    field: &'static str,
    event: usize,
    index: usize,
    servers: usize,
) -> Result<(), SimError> {
    if index >= servers {
        return Err(SimError::invalid(
            field,
            format!("event {event}: server {index} out of range (fleet has {servers})"),
        ));
    }
    Ok(())
}

fn check_ambient(field: &'static str, model: &AmbientModel) -> Result<(), SimError> {
    let finite = |v: f64| v.is_finite();
    let ok = match model {
        AmbientModel::Fixed(v) => finite(*v),
        AmbientModel::Diurnal {
            mean,
            amplitude,
            period_secs,
        } => finite(*mean) && finite(*amplitude) && *period_secs > 0.0 && finite(*period_secs),
        AmbientModel::Crac {
            setpoint,
            degrees_per_kw,
        } => finite(*setpoint) && finite(*degrees_per_kw),
        AmbientModel::Schedule(entries) => {
            !entries.is_empty() && entries.iter().all(|(_, v)| finite(*v))
        }
    };
    if ok {
        Ok(())
    } else {
        Err(SimError::invalid(
            field,
            format!("ambient model out of domain: {model:?}"),
        ))
    }
}

// ---------------------------------------------------------------------------
// JSON codec helpers. Explicit field-by-field encoding keeps the corpus
// format independent of Rust field order and lets parsing stay strict.

fn bad(field: &str, what: &str) -> SimError {
    SimError::invalid("scenario.json", format!("field `{field}`: {what}"))
}

fn get_u64(doc: &Json, field: &str) -> Result<u64, SimError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(field, "missing or not a non-negative integer"))
}

/// Seeds span the full `u64` range, which JSON's `f64` numbers cannot
/// represent above 2^53 — so they serialize as decimal strings. Plain
/// numbers are still accepted (hand-written corpus files use small
/// seeds), but only below the exact-integer threshold.
fn seed_to_json(seed: u64) -> Json {
    Json::Str(seed.to_string())
}

fn get_seed(doc: &Json, field: &str) -> Result<u64, SimError> {
    match doc.get(field) {
        Some(Json::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| bad(field, "seed string is not a u64")),
        Some(other) => match other.as_u64() {
            Some(n) if n < (1 << 53) => Ok(n),
            _ => Err(bad(
                field,
                "numeric seed must be an exact integer below 2^53",
            )),
        },
        None => Err(bad(field, "missing seed")),
    }
}

fn get_num(doc: &Json, field: &str) -> Result<f64, SimError> {
    doc.get(field)
        .and_then(Json::as_num)
        .ok_or_else(|| bad(field, "missing or not a number"))
}

fn get_str<'j>(doc: &'j Json, field: &str) -> Result<&'j str, SimError> {
    doc.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(field, "missing or not a string"))
}

fn task_name(task: TaskProfile) -> &'static str {
    match task {
        TaskProfile::CpuBound => "cpu_bound",
        TaskProfile::MemoryBound => "memory_bound",
        TaskProfile::Mixed => "mixed",
        TaskProfile::Idle => "idle",
        TaskProfile::Bursty => "bursty",
        TaskProfile::WebServer => "web_server",
    }
}

fn task_from_name(name: &str) -> Result<TaskProfile, SimError> {
    match name {
        "cpu_bound" => Ok(TaskProfile::CpuBound),
        "memory_bound" => Ok(TaskProfile::MemoryBound),
        "mixed" => Ok(TaskProfile::Mixed),
        "idle" => Ok(TaskProfile::Idle),
        "bursty" => Ok(TaskProfile::Bursty),
        "web_server" => Ok(TaskProfile::WebServer),
        other => Err(bad("task", &format!("unknown task profile `{other}`"))),
    }
}

fn speed_name(speed: FanSpeed) -> &'static str {
    match speed {
        FanSpeed::Low => "low",
        FanSpeed::Medium => "medium",
        FanSpeed::High => "high",
    }
}

fn speed_from_name(name: &str) -> Result<FanSpeed, SimError> {
    match name {
        "low" => Ok(FanSpeed::Low),
        "medium" => Ok(FanSpeed::Medium),
        "high" => Ok(FanSpeed::High),
        other => Err(bad("speed", &format!("unknown fan speed `{other}`"))),
    }
}

fn ambient_to_json(model: &AmbientModel) -> Json {
    match model {
        AmbientModel::Fixed(v) => {
            Json::obj(vec![("type", Json::str("fixed")), ("c", Json::Num(*v))])
        }
        AmbientModel::Diurnal {
            mean,
            amplitude,
            period_secs,
        } => Json::obj(vec![
            ("type", Json::str("diurnal")),
            ("mean", Json::Num(*mean)),
            ("amplitude", Json::Num(*amplitude)),
            ("period_secs", Json::Num(*period_secs)),
        ]),
        AmbientModel::Crac {
            setpoint,
            degrees_per_kw,
        } => Json::obj(vec![
            ("type", Json::str("crac")),
            ("setpoint", Json::Num(*setpoint)),
            ("degrees_per_kw", Json::Num(*degrees_per_kw)),
        ]),
        AmbientModel::Schedule(entries) => Json::obj(vec![
            ("type", Json::str("schedule")),
            (
                "entries",
                Json::Arr(
                    entries
                        .iter()
                        .map(|(at, v)| {
                            Json::Arr(vec![Json::Num(at.as_millis() as f64), Json::Num(*v)])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn ambient_from_json(doc: &Json) -> Result<AmbientModel, SimError> {
    match get_str(doc, "type")? {
        "fixed" => Ok(AmbientModel::Fixed(get_num(doc, "c")?)),
        "diurnal" => Ok(AmbientModel::Diurnal {
            mean: get_num(doc, "mean")?,
            amplitude: get_num(doc, "amplitude")?,
            period_secs: get_num(doc, "period_secs")?,
        }),
        "crac" => Ok(AmbientModel::Crac {
            setpoint: get_num(doc, "setpoint")?,
            degrees_per_kw: get_num(doc, "degrees_per_kw")?,
        }),
        "schedule" => {
            let Some(Json::Arr(items)) = doc.get("entries") else {
                return Err(bad("ambient.entries", "missing or not an array"));
            };
            let mut entries = Vec::with_capacity(items.len());
            for item in items {
                let Json::Arr(pair) = item else {
                    return Err(bad("ambient.entries", "entry must be [ms, c]"));
                };
                let (Some(at), Some(v)) = (
                    pair.first().and_then(Json::as_u64),
                    pair.get(1).and_then(Json::as_num),
                ) else {
                    return Err(bad("ambient.entries", "entry must be [ms, c]"));
                };
                entries.push((SimTime::from_millis(at), v));
            }
            Ok(AmbientModel::Schedule(entries))
        }
        other => Err(bad("ambient.type", &format!("unknown model `{other}`"))),
    }
}

fn windows_to_json(windows: &[(f64, f64)]) -> Json {
    Json::Arr(
        windows
            .iter()
            .map(|(a, b)| Json::Arr(vec![Json::Num(*a), Json::Num(*b)]))
            .collect(),
    )
}

fn windows_from_json(doc: &Json, field: &str) -> Result<Vec<(f64, f64)>, SimError> {
    match doc.get(field) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => {
            let mut windows = Vec::with_capacity(items.len());
            for item in items {
                let Json::Arr(pair) = item else {
                    return Err(bad(field, "window must be [start, end]"));
                };
                let (Some(a), Some(b)) = (
                    pair.first().and_then(Json::as_num),
                    pair.get(1).and_then(Json::as_num),
                ) else {
                    return Err(bad(field, "window must be [start, end]"));
                };
                windows.push((a, b));
            }
            Ok(windows)
        }
        Some(_) => Err(bad(field, "must be an array of [start, end] pairs")),
    }
}

fn fault_to_json(plan: &FaultPlan) -> Json {
    let mut pairs = vec![("seed", seed_to_json(plan.seed))];
    if let Some(d) = &plan.dropout {
        pairs.push((
            "dropout",
            Json::obj(vec![
                ("window_prob", Json::Num(d.window_prob)),
                ("min_secs", Json::Num(d.min_secs)),
                ("max_secs", Json::Num(d.max_secs)),
                ("windows", windows_to_json(&d.windows)),
            ]),
        ));
    }
    if let Some(s) = &plan.stuck {
        pairs.push((
            "stuck",
            Json::obj(vec![
                ("window_prob", Json::Num(s.window_prob)),
                ("min_secs", Json::Num(s.min_secs)),
                ("max_secs", Json::Num(s.max_secs)),
                ("windows", windows_to_json(&s.windows)),
            ]),
        ));
    }
    if let Some(s) = &plan.spike {
        pairs.push((
            "spike",
            Json::obj(vec![
                ("prob", Json::Num(s.prob)),
                ("min_magnitude_c", Json::Num(s.min_magnitude_c)),
                ("max_magnitude_c", Json::Num(s.max_magnitude_c)),
                ("at", windows_to_json(&s.at)),
            ]),
        ));
    }
    if let Some(j) = &plan.jitter {
        pairs.push((
            "jitter",
            Json::obj(vec![
                ("prob", Json::Num(j.prob)),
                ("max_skew_secs", Json::Num(j.max_skew_secs)),
            ]),
        ));
    }
    if let Some(l) = &plan.lost_events {
        pairs.push(("lost_events", Json::obj(vec![("prob", Json::Num(l.prob))])));
    }
    Json::obj(pairs)
}

fn fault_from_json(doc: &Json) -> Result<FaultPlan, SimError> {
    if matches!(doc, Json::Null) {
        return Ok(FaultPlan::none());
    }
    let mut plan = FaultPlan::new(get_seed(doc, "seed").unwrap_or(0));
    if let Some(d) = doc.get("dropout") {
        plan.dropout = Some(DropoutFault {
            window_prob: get_num(d, "window_prob")?,
            min_secs: get_num(d, "min_secs")?,
            max_secs: get_num(d, "max_secs")?,
            windows: windows_from_json(d, "windows")?,
        });
    }
    if let Some(s) = doc.get("stuck") {
        plan.stuck = Some(StuckFault {
            window_prob: get_num(s, "window_prob")?,
            min_secs: get_num(s, "min_secs")?,
            max_secs: get_num(s, "max_secs")?,
            windows: windows_from_json(s, "windows")?,
        });
    }
    if let Some(s) = doc.get("spike") {
        plan.spike = Some(SpikeFault {
            prob: get_num(s, "prob")?,
            min_magnitude_c: get_num(s, "min_magnitude_c")?,
            max_magnitude_c: get_num(s, "max_magnitude_c")?,
            at: windows_from_json(s, "at")?,
        });
    }
    if let Some(j) = doc.get("jitter") {
        plan.jitter = Some(JitterFault {
            prob: get_num(j, "prob")?,
            max_skew_secs: get_num(j, "max_skew_secs")?,
        });
    }
    if let Some(l) = doc.get("lost_events") {
        plan.lost_events = Some(LostEventFault {
            prob: get_num(l, "prob")?,
        });
    }
    Ok(plan)
}

fn event_to_json(event: &ScenarioEvent) -> Json {
    let mut pairs = vec![("at_ms", Json::Num(event.at.as_millis() as f64))];
    match &event.action {
        ScenarioAction::BootVm {
            server,
            vcpus,
            memory_gb,
            task,
        } => {
            pairs.push(("type", Json::str("boot_vm")));
            pairs.push(("server", Json::Num(*server as f64)));
            pairs.push(("vcpus", Json::Num(f64::from(*vcpus))));
            pairs.push(("memory_gb", Json::Num(*memory_gb)));
            pairs.push(("task", Json::str(task_name(*task))));
        }
        ScenarioAction::StopVm { vm } => {
            pairs.push(("type", Json::str("stop_vm")));
            pairs.push(("vm", Json::Num(*vm as f64)));
        }
        ScenarioAction::Migrate { vm, dest } => {
            pairs.push(("type", Json::str("migrate")));
            pairs.push(("vm", Json::Num(*vm as f64)));
            pairs.push(("dest", Json::Num(*dest as f64)));
        }
        ScenarioAction::SetFanSpeed { server, speed } => {
            pairs.push(("type", Json::str("set_fan_speed")));
            pairs.push(("server", Json::Num(*server as f64)));
            pairs.push(("speed", Json::str(speed_name(*speed))));
        }
        ScenarioAction::FailFans { server, count } => {
            pairs.push(("type", Json::str("fail_fans")));
            pairs.push(("server", Json::Num(*server as f64)));
            pairs.push(("count", Json::Num(f64::from(*count))));
        }
        ScenarioAction::SetAmbient { model } => {
            pairs.push(("type", Json::str("set_ambient")));
            pairs.push(("model", ambient_to_json(model)));
        }
    }
    Json::obj(pairs)
}

fn event_from_json(doc: &Json) -> Result<ScenarioEvent, SimError> {
    let at = SimTime::from_millis(get_u64(doc, "at_ms")?);
    let action = match get_str(doc, "type")? {
        "boot_vm" => ScenarioAction::BootVm {
            server: get_u64(doc, "server")? as usize,
            vcpus: u32::try_from(get_u64(doc, "vcpus")?)
                .map_err(|_| bad("vcpus", "out of u32 range"))?,
            memory_gb: get_num(doc, "memory_gb")?,
            task: task_from_name(get_str(doc, "task")?)?,
        },
        "stop_vm" => ScenarioAction::StopVm {
            vm: get_u64(doc, "vm")?,
        },
        "migrate" => ScenarioAction::Migrate {
            vm: get_u64(doc, "vm")?,
            dest: get_u64(doc, "dest")? as usize,
        },
        "set_fan_speed" => ScenarioAction::SetFanSpeed {
            server: get_u64(doc, "server")? as usize,
            speed: speed_from_name(get_str(doc, "speed")?)?,
        },
        "fail_fans" => ScenarioAction::FailFans {
            server: get_u64(doc, "server")? as usize,
            count: u32::try_from(get_u64(doc, "count")?)
                .map_err(|_| bad("count", "out of u32 range"))?,
        },
        "set_ambient" => ScenarioAction::SetAmbient {
            model: ambient_from_json(doc.get("model").unwrap_or(&Json::Null))?,
        },
        other => return Err(bad("type", &format!("unknown event type `{other}`"))),
    };
    Ok(ScenarioEvent { at, action })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            name: "codec-roundtrip".to_string(),
            seed: 77,
            servers: 3,
            vms_per_server: 2,
            duration: SimDuration::from_secs(120),
            ambient: AmbientModel::Diurnal {
                mean: 24.0,
                amplitude: 2.5,
                period_secs: 600.0,
            },
            fault: FaultPlan::new(9)
                .with_dropout(DropoutFault::scheduled(vec![(10.0, 20.0)]).unwrap())
                .with_spike(SpikeFault::random(0.05, Celsius::new(2.0), Celsius::new(6.0)).unwrap())
                .with_jitter(JitterFault::random(0.1, vmtherm_units::Seconds::new(1.5)).unwrap()),
            events: vec![
                ScenarioEvent {
                    at: SimTime::from_secs(30),
                    action: ScenarioAction::BootVm {
                        server: 1,
                        vcpus: 2,
                        memory_gb: 4.0,
                        task: TaskProfile::Bursty,
                    },
                },
                ScenarioEvent {
                    at: SimTime::from_secs(50),
                    action: ScenarioAction::Migrate { vm: 0, dest: 2 },
                },
                ScenarioEvent {
                    at: SimTime::from_secs(70),
                    action: ScenarioAction::SetAmbient {
                        model: AmbientModel::Fixed(31.0),
                    },
                },
                ScenarioEvent {
                    at: SimTime::from_secs(80),
                    action: ScenarioAction::SetFanSpeed {
                        server: 0,
                        speed: FanSpeed::High,
                    },
                },
                ScenarioEvent {
                    at: SimTime::from_secs(90),
                    action: ScenarioAction::FailFans {
                        server: 2,
                        count: 1,
                    },
                },
                ScenarioEvent {
                    at: SimTime::from_secs(100),
                    action: ScenarioAction::StopVm { vm: 3 },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let scenario = sample();
        let text = scenario.to_json_string();
        let back = Scenario::parse(&text).expect("parse");
        assert_eq!(scenario, back);
        // Rendering is deterministic: a second trip is byte-identical.
        assert_eq!(text, back.to_json_string());
    }

    #[test]
    fn parse_rejects_schema_drift_and_bad_fields() {
        assert!(Scenario::parse("not json").is_err());
        assert!(Scenario::parse("{\"schema\": 999}").is_err());
        let mut scenario = sample();
        scenario.name = "bad name with spaces".to_string();
        assert!(Scenario::parse(&scenario.to_json_string()).is_err());
        let mut scenario = sample();
        scenario.events[0] = ScenarioEvent {
            at: SimTime::ZERO,
            action: ScenarioAction::FailFans {
                server: 99,
                count: 1,
            },
        };
        assert!(Scenario::parse(&scenario.to_json_string()).is_err());
    }

    #[test]
    fn validate_enforces_domain_limits() {
        let mut s = Scenario::quiet("ok", 1, 2, SimDuration::from_secs(30));
        assert!(s.validate().is_ok());
        s.servers = 0;
        assert!(s.validate().is_err());
        s.servers = MAX_SERVERS + 1;
        assert!(s.validate().is_err());
        s.servers = 2;
        s.duration = SimDuration::ZERO;
        assert!(s.validate().is_err());
        s.duration = SimDuration::from_secs(30);
        s.vms_per_server = MAX_VMS_PER_SERVER + 1;
        assert!(s.validate().is_err());
        s.vms_per_server = 0;
        s.ambient = AmbientModel::Fixed(f64::NAN);
        assert!(s.validate().is_err());
    }

    #[test]
    fn build_boots_initial_vms_and_schedules_events() {
        let scenario = sample();
        let sim = scenario.build(ClockMode::Fixed).expect("build");
        assert_eq!(sim.datacenter().len(), 3);
        let vms: usize = (0..3)
            .map(|s| {
                sim.datacenter()
                    .server(ServerId::new(s))
                    .expect("server")
                    .vm_count()
            })
            .sum();
        assert_eq!(vms as u64, scenario.initial_vms());
    }

    #[test]
    fn fuzzer_finds_and_shrinks_planted_ambient_settle_bug() {
        // Arm the test-only defect: `settle_for` skips the
        // settle-before-mutation pass on ambient swaps, so sleeping
        // servers later integrate their whole skipped span under the
        // new ambient. The fuzzer must (a) surface it within a bounded
        // case budget and (b) shrink the repro to at most 3 events.
        crate::engine::planted::set_skip_ambient_settle(true);
        let config = oracle::OracleConfig { grids: Vec::new() };
        let mut found = None;
        for index in 0..80 {
            let scenario = generate::scenario(0xF00D, index);
            let report = oracle::check_scenario(&scenario, &config).expect("battery");
            if let Some(first) = report.failures.first() {
                found = Some((scenario, first.clone()));
                break;
            }
        }
        let (scenario, failure) =
            found.expect("planted settle bug not surfaced within 80 fuzz cases");
        let result = shrink::shrink(&scenario, failure, 400, &mut |candidate| {
            oracle::check_scenario(candidate, &config)
                .ok()
                .and_then(|r| r.failures.first().cloned())
        });
        assert!(
            result.scenario.events.len() <= 3,
            "repro not minimal: {} events in {}",
            result.scenario.events.len(),
            result.scenario.to_json_string()
        );
        // The minimized repro round-trips through the corpus format…
        let text = result.scenario.to_json_string();
        assert_eq!(Scenario::parse(&text).expect("parse"), result.scenario);
        // …and passes again once the defect is disarmed, proving the
        // failure was the planted bug and not an oracle artifact.
        crate::engine::planted::set_skip_ambient_settle(false);
        let clean = oracle::check_scenario(&result.scenario, &config).expect("battery");
        assert!(
            clean.passed(),
            "disarmed repro still fails: {:?}",
            clean.failures
        );
    }

    #[test]
    fn clean_scenario_builds_without_plan() {
        let scenario = Scenario::quiet("clean", 3, 2, SimDuration::from_secs(20));
        assert!(scenario.build_without_fault_plan(ClockMode::Fixed).is_ok());
        let mut faulted = scenario;
        faulted.fault = FaultPlan::new(1)
            .with_jitter(JitterFault::random(0.1, vmtherm_units::Seconds::new(1.0)).unwrap());
        assert!(faulted.build_without_fault_plan(ClockMode::Fixed).is_err());
    }
}
