//! Temperature sensor model.
//!
//! Real CPU temperature telemetry (IPMI / `coretemp`) is quantized — most
//! digital thermal sensors report whole degrees — and noisy. The paper's
//! training records come from such sensors, so the learner must absorb
//! this error; the MSE floor it reports (~0.7 in Fig. 1(c)) is largely
//! sensor error. [`TemperatureSensor`] reproduces both effects with a
//! seeded RNG for deterministic experiments.

use crate::error::SimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vmtherm_units::Celsius;

/// Sensor characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Standard deviation of zero-mean Gaussian read noise (°C).
    pub noise_sigma: f64,
    /// Reading granularity (°C); 1.0 mimics whole-degree DTS sensors,
    /// 0 disables quantization.
    pub quantization: f64,
}

impl SensorConfig {
    /// Validates and constructs a config.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] on negative (or NaN) noise or
    /// quantization.
    pub fn new(noise_sigma: f64, quantization: f64) -> Result<Self, SimError> {
        if !(noise_sigma >= 0.0) {
            return Err(SimError::invalid(
                "sensor.noise_sigma",
                format!("negative noise sigma: {noise_sigma}"),
            ));
        }
        if !(quantization >= 0.0) {
            return Err(SimError::invalid(
                "sensor.quantization",
                format!("negative quantization: {quantization}"),
            ));
        }
        Ok(SensorConfig {
            noise_sigma,
            quantization,
        })
    }

    /// An idealised noiseless, continuous sensor (useful in tests).
    #[must_use]
    pub fn ideal() -> Self {
        SensorConfig {
            noise_sigma: 0.0,
            quantization: 0.0,
        }
    }
}

impl Default for SensorConfig {
    /// Whole-degree quantization with 0.4 °C read noise — typical of the
    /// on-die DTS plus IPMI path.
    fn default() -> Self {
        SensorConfig {
            noise_sigma: 0.4,
            quantization: 1.0,
        }
    }
}

/// A stateful sensor: owns its RNG so experiment replays are exact.
#[derive(Debug, Clone)]
pub struct TemperatureSensor {
    config: SensorConfig,
    rng: StdRng,
}

impl TemperatureSensor {
    /// Creates a sensor with its own RNG stream.
    #[must_use]
    pub fn new(config: SensorConfig, seed: u64) -> Self {
        TemperatureSensor {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces one reading of `true_temp_c`.
    pub fn read(&mut self, true_temp_c: Celsius) -> f64 {
        let noisy = true_temp_c.get() + self.gaussian() * self.config.noise_sigma;
        if self.config.quantization > 0.0 {
            (noisy / self.config.quantization).round() * self.config.quantization
        } else {
            noisy
        }
    }

    /// Sensor configuration.
    #[must_use]
    pub fn config(&self) -> SensorConfig {
        self.config
    }

    /// Standard Box–Muller Gaussian sample.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    #[test]
    fn ideal_sensor_is_exact() {
        let mut s = TemperatureSensor::new(SensorConfig::ideal(), 1);
        assert_eq!(s.read(c(53.21)), 53.21);
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let mut s = TemperatureSensor::new(SensorConfig::new(0.0, 1.0).expect("config"), 1);
        assert_eq!(s.read(c(53.4)), 53.0);
        assert_eq!(s.read(c(53.6)), 54.0);
        let mut half = TemperatureSensor::new(SensorConfig::new(0.0, 0.5).expect("config"), 1);
        assert_eq!(half.read(c(53.3)), 53.5);
    }

    #[test]
    fn noise_is_zero_mean_and_has_requested_sigma() {
        let mut s = TemperatureSensor::new(SensorConfig::new(0.5, 0.0).expect("config"), 42);
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| s.read(c(50.0))).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let var = readings
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 50.0).abs() < 0.02, "mean = {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sigma = {}", var.sqrt());
    }

    #[test]
    fn sensor_is_seed_deterministic() {
        let run = |seed| {
            let mut s = TemperatureSensor::new(SensorConfig::default(), seed);
            (0..20)
                .map(|i| s.read(c(40.0 + i as f64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn default_config_quantizes_to_whole_degrees() {
        let mut s = TemperatureSensor::new(SensorConfig::default(), 3);
        for _ in 0..50 {
            let r = s.read(c(47.3));
            assert_eq!(r, r.round());
        }
    }

    #[test]
    fn negative_sigma_rejected() {
        assert!(matches!(
            SensorConfig::new(-0.1, 0.0),
            Err(SimError::InvalidConfig { field, .. }) if field == "sensor.noise_sigma"
        ));
        assert!(SensorConfig::new(0.1, -1.0).is_err());
        assert!(SensorConfig::new(f64::NAN, 0.0).is_err());
    }
}
