//! Server fans: airflow and its effect on the heatsink-to-ambient thermal
//! resistance.
//!
//! The paper's θ_fan input is the server's fan status; Fig. 1(c) is
//! evaluated "with 4 server fans". Here a [`FanBank`] of `count` fans at a
//! speed level produces airflow; [`FanBank::sink_resistance`] converts that
//! into the convective resistance the thermal network sees — more airflow,
//! lower resistance, cooler stable temperature.

use serde::{Deserialize, Serialize};
use vmtherm_units::Celsius;

/// Discrete fan speed levels, as exposed by typical BMC firmware.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum FanSpeed {
    /// ~30% duty cycle.
    Low,
    /// ~60% duty cycle (default).
    #[default]
    Medium,
    /// 100% duty cycle.
    High,
}

impl FanSpeed {
    /// Airflow of one fan at this speed, in CFM (cubic feet per minute).
    /// Values typical of 80 mm server fans.
    #[must_use]
    pub fn cfm_per_fan(&self) -> f64 {
        match self {
            FanSpeed::Low => 18.0,
            FanSpeed::Medium => 36.0,
            FanSpeed::High => 60.0,
        }
    }

    /// All levels, ascending.
    pub const ALL: [FanSpeed; 3] = [FanSpeed::Low, FanSpeed::Medium, FanSpeed::High];
}

impl std::fmt::Display for FanSpeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FanSpeed::Low => "low",
            FanSpeed::Medium => "medium",
            FanSpeed::High => "high",
        };
        f.write_str(s)
    }
}

/// A bank of identical fans cooling one server's heatsink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanBank {
    count: u32,
    speed: FanSpeed,
    /// Fans that have failed (no airflow, no power). Fault injection for
    /// the anomaly-detection extension.
    #[serde(default)]
    failed: u32,
}

impl FanBank {
    /// A bank of `count` fans at medium speed.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero — a server without fans would have an
    /// unbounded stable temperature in this model.
    #[must_use]
    pub fn new(count: u32) -> Self {
        assert!(count > 0, "fan bank needs at least one fan");
        FanBank {
            count,
            speed: FanSpeed::default(),
            failed: 0,
        }
    }

    /// Sets the common speed level of every fan in the bank.
    #[must_use]
    pub fn with_speed(mut self, speed: FanSpeed) -> Self {
        self.speed = speed;
        self
    }

    /// Number of fans.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Current speed level.
    #[must_use]
    pub fn speed(&self) -> FanSpeed {
        self.speed
    }

    /// Mutable speed control (for thermostatic policies).
    pub fn set_speed(&mut self, speed: FanSpeed) {
        self.speed = speed;
    }

    /// Marks `n` additional fans as failed (saturating at the bank size).
    /// Failed fans produce no airflow and draw no power — the fault the
    /// anomaly-detection extension must catch from temperature alone.
    pub fn fail(&mut self, n: u32) {
        self.failed = (self.failed + n).min(self.count);
    }

    /// Repairs all failed fans.
    pub fn repair(&mut self) {
        self.failed = 0;
    }

    /// Number of fans currently spinning.
    #[must_use]
    pub fn operational(&self) -> u32 {
        self.count - self.failed
    }

    /// Number of failed fans.
    #[must_use]
    pub fn failed(&self) -> u32 {
        self.failed
    }

    /// Total airflow in CFM (failed fans contribute nothing).
    #[must_use]
    pub fn airflow_cfm(&self) -> f64 {
        self.operational() as f64 * self.speed.cfm_per_fan()
    }

    /// Heatsink→ambient thermal resistance (K/W) produced by this airflow.
    ///
    /// Standard forced-convection fit: `R = R_min + R_span / (1 + k·CFM)`.
    /// At 4 fans on medium (144 CFM) this gives ≈ 0.10 K/W; a 150 W load
    /// then sits ≈ 15 K above ambient at the sink, plus the die gradient —
    /// in line with the 40–75 °C CPU temperatures datacenter servers report.
    #[must_use]
    pub fn sink_resistance(&self) -> f64 {
        const R_MIN: f64 = 0.06; // K/W, infinite-airflow asymptote
        const R_SPAN: f64 = 0.55; // K/W, natural-convection extra
        const K: f64 = 0.085; // 1/CFM
        R_MIN + R_SPAN / (1.0 + K * self.airflow_cfm())
    }

    /// Electrical power drawn by the fans themselves (W); included in the
    /// heat budget of the machine room, not the CPU die.
    #[must_use]
    pub fn fan_power(&self) -> f64 {
        let per_fan = match self.speed {
            FanSpeed::Low => 1.5,
            FanSpeed::Medium => 4.0,
            FanSpeed::High => 9.5,
        };
        self.operational() as f64 * per_fan
    }
}

impl Default for FanBank {
    /// Four fans at medium speed — the Fig. 1(c) configuration.
    fn default() -> Self {
        FanBank::new(4)
    }
}

/// A simple thermostatic fan-speed policy: raise the speed above
/// `high_watermark` °C, lower it below `low_watermark` °C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermostaticPolicy {
    /// Temperature above which the policy escalates one level (°C).
    pub high_watermark: f64,
    /// Temperature below which the policy de-escalates one level (°C).
    pub low_watermark: f64,
}

impl ThermostaticPolicy {
    /// Applies the policy to a bank given the current die temperature,
    /// returning `true` if the speed changed.
    pub fn apply(&self, bank: &mut FanBank, die_temp_c: Celsius) -> bool {
        let current = bank.speed();
        let next = if die_temp_c.get() > self.high_watermark {
            match current {
                FanSpeed::Low => FanSpeed::Medium,
                FanSpeed::Medium | FanSpeed::High => FanSpeed::High,
            }
        } else if die_temp_c.get() < self.low_watermark {
            match current {
                FanSpeed::High => FanSpeed::Medium,
                FanSpeed::Medium | FanSpeed::Low => FanSpeed::Low,
            }
        } else {
            current
        };
        let changed = next != current;
        bank.set_speed(next);
        changed
    }
}

impl Default for ThermostaticPolicy {
    fn default() -> Self {
        ThermostaticPolicy {
            high_watermark: 75.0,
            low_watermark: 45.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airflow_scales_with_count_and_speed() {
        let two = FanBank::new(2);
        let four = FanBank::new(4);
        assert_eq!(four.airflow_cfm(), 2.0 * two.airflow_cfm());
        let fast = FanBank::new(2).with_speed(FanSpeed::High);
        assert!(fast.airflow_cfm() > two.airflow_cfm());
    }

    #[test]
    fn more_fans_mean_lower_resistance() {
        let mut prev = f64::INFINITY;
        for n in 1..=8 {
            let r = FanBank::new(n).sink_resistance();
            assert!(r < prev, "resistance not decreasing at {n} fans");
            assert!(r > 0.0);
            prev = r;
        }
    }

    #[test]
    fn resistance_has_physical_floor() {
        let r = FanBank::new(100)
            .with_speed(FanSpeed::High)
            .sink_resistance();
        assert!(r >= 0.06);
    }

    #[test]
    fn four_fan_medium_resistance_in_expected_band() {
        let r = FanBank::default().sink_resistance();
        assert!((0.08..0.15).contains(&r), "r = {r}");
    }

    #[test]
    #[should_panic(expected = "at least one fan")]
    fn zero_fans_panics() {
        let _ = FanBank::new(0);
    }

    #[test]
    fn fan_power_grows_with_speed() {
        let mut prev = 0.0;
        for s in FanSpeed::ALL {
            let p = FanBank::new(4).with_speed(s).fan_power();
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn thermostat_escalates_and_deescalates() {
        let policy = ThermostaticPolicy {
            high_watermark: 70.0,
            low_watermark: 40.0,
        };
        let mut bank = FanBank::new(4);
        assert!(policy.apply(&mut bank, Celsius::new(80.0)));
        assert_eq!(bank.speed(), FanSpeed::High);
        assert!(!policy.apply(&mut bank, Celsius::new(80.0))); // already high
        assert!(policy.apply(&mut bank, Celsius::new(30.0)));
        assert_eq!(bank.speed(), FanSpeed::Medium);
        assert!(policy.apply(&mut bank, Celsius::new(30.0)));
        assert_eq!(bank.speed(), FanSpeed::Low);
    }

    #[test]
    fn failed_fans_cut_airflow_and_raise_resistance() {
        let healthy = FanBank::new(4);
        let mut degraded = FanBank::new(4);
        degraded.fail(2);
        assert_eq!(degraded.operational(), 2);
        assert_eq!(degraded.airflow_cfm(), healthy.airflow_cfm() / 2.0);
        assert!(degraded.sink_resistance() > healthy.sink_resistance());
        assert!(degraded.fan_power() < healthy.fan_power());
        degraded.fail(10); // saturates
        assert_eq!(degraded.operational(), 0);
        degraded.repair();
        assert_eq!(degraded.failed(), 0);
        assert_eq!(degraded.airflow_cfm(), healthy.airflow_cfm());
    }

    #[test]
    fn thermostat_holds_in_deadband() {
        let policy = ThermostaticPolicy::default();
        let mut bank = FanBank::new(2).with_speed(FanSpeed::Medium);
        assert!(!policy.apply(&mut bank, Celsius::new(60.0)));
        assert_eq!(bank.speed(), FanSpeed::Medium);
    }
}
