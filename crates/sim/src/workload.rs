//! VM workloads: task profiles and the utilization traces they generate.
//!
//! The paper's ξ_VM input covers "VM configurations **and deployed tasks**";
//! traditional task-temperature approaches assume a single homogeneous task
//! per server, which is exactly what multi-tenant clouds violate. The task
//! profiles here span that heterogeneity: steady CPU hogs, memory-bound
//! jobs with modest CPU, diurnal web servers, bursty batch work and idle
//! placeholders.

use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The kind of task a VM runs. Determines the shape of its CPU utilization
/// trace and its memory activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TaskProfile {
    /// Sustained high CPU (scientific computing, encoding): ~90% flat.
    CpuBound,
    /// Memory-churning workload with moderate CPU: ~35% flat, high memory
    /// activity.
    MemoryBound,
    /// A balanced mix: ~60% with slow sinusoidal variation.
    Mixed,
    /// Nearly idle placeholder VM: ~3%.
    Idle,
    /// On/off batch phases: 95% bursts separated by near-idle gaps.
    Bursty,
    /// Diurnal request-driven load: sinusoid between ~20% and ~80%.
    WebServer,
}

/// Every profile, for exhaustive sweeps and random sampling.
pub const ALL_TASK_PROFILES: [TaskProfile; 6] = [
    TaskProfile::CpuBound,
    TaskProfile::MemoryBound,
    TaskProfile::Mixed,
    TaskProfile::Idle,
    TaskProfile::Bursty,
    TaskProfile::WebServer,
];

impl TaskProfile {
    /// Long-run mean CPU utilization of one vCPU running this task, in
    /// `[0, 1]`. Used by feature encoding and by coarse baselines.
    #[must_use]
    pub fn nominal_cpu(&self) -> f64 {
        match self {
            TaskProfile::CpuBound => 0.90,
            TaskProfile::MemoryBound => 0.35,
            TaskProfile::Mixed => 0.60,
            TaskProfile::Idle => 0.03,
            TaskProfile::Bursty => 0.50,
            TaskProfile::WebServer => 0.50,
        }
    }

    /// Relative memory activity in `[0, 1]`, scaling the memory power
    /// component.
    #[must_use]
    pub fn memory_intensity(&self) -> f64 {
        match self {
            TaskProfile::CpuBound => 0.30,
            TaskProfile::MemoryBound => 0.90,
            TaskProfile::Mixed => 0.50,
            TaskProfile::Idle => 0.05,
            TaskProfile::Bursty => 0.40,
            TaskProfile::WebServer => 0.45,
        }
    }

    /// A stable integer tag for feature encoding.
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            TaskProfile::CpuBound => 0,
            TaskProfile::MemoryBound => 1,
            TaskProfile::Mixed => 2,
            TaskProfile::Idle => 3,
            TaskProfile::Bursty => 4,
            TaskProfile::WebServer => 5,
        }
    }

    /// Builds the stochastic utilization generator for this profile.
    /// `seed` makes the trace reproducible per VM.
    #[must_use]
    pub fn utilization_model(&self, seed: u64) -> UtilizationModel {
        match self {
            TaskProfile::CpuBound => UtilizationModel::random_walk(0.90, 0.02, 0.75, 1.0, seed),
            TaskProfile::MemoryBound => UtilizationModel::random_walk(0.35, 0.02, 0.20, 0.55, seed),
            // Periods divide the paper's 600 s ψ_stable averaging window so
            // Eq. (1)'s mean is phase-independent: a workload oscillating
            // slower than the window would make ψ_stable ill-defined.
            TaskProfile::Mixed => UtilizationModel::Sinusoid {
                mean: 0.60,
                amplitude: 0.15,
                period_secs: 300.0,
                phase: (seed % 997) as f64 / 997.0 * std::f64::consts::TAU,
            },
            TaskProfile::Idle => UtilizationModel::Constant(0.03),
            TaskProfile::Bursty => UtilizationModel::OnOff {
                on_level: 0.95,
                off_level: 0.05,
                on_secs: 300.0,
                off_secs: 300.0,
                offset_secs: (seed % 601) as f64,
            },
            TaskProfile::WebServer => UtilizationModel::Sinusoid {
                mean: 0.50,
                amplitude: 0.30,
                period_secs: 600.0,
                phase: (seed % 1009) as f64 / 1009.0 * std::f64::consts::TAU,
            },
        }
    }
}

impl std::fmt::Display for TaskProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TaskProfile::CpuBound => "cpu-bound",
            TaskProfile::MemoryBound => "memory-bound",
            TaskProfile::Mixed => "mixed",
            TaskProfile::Idle => "idle",
            TaskProfile::Bursty => "bursty",
            TaskProfile::WebServer => "web-server",
        };
        f.write_str(name)
    }
}

/// A per-vCPU utilization process. Values are always clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UtilizationModel {
    /// Fixed level.
    Constant(f64),
    /// `mean + amplitude * sin(2π t / period + phase)`.
    Sinusoid {
        /// Centre level.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Oscillation period in seconds.
        period_secs: f64,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Mean-reverting bounded random walk (Ornstein–Uhlenbeck-flavoured).
    RandomWalk {
        /// Level the walk reverts towards.
        mean: f64,
        /// Per-step noise magnitude.
        sigma: f64,
        /// Hard lower bound.
        min: f64,
        /// Hard upper bound.
        max: f64,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Replays a recorded utilization trace (e.g. exported from a
    /// production monitoring system) with linear interpolation between
    /// points; repeats from the start after the last point. This is the
    /// ingestion path for real datacenter traces where available — the
    /// synthetic profiles stand in when they are not.
    Trace {
        /// `(time_secs, utilization)` samples, sorted by time, non-empty.
        points: Vec<(f64, f64)>,
    },
    /// Square wave alternating between two levels.
    OnOff {
        /// Utilization while on.
        on_level: f64,
        /// Utilization while off.
        off_level: f64,
        /// On-phase length in seconds.
        on_secs: f64,
        /// Off-phase length in seconds.
        off_secs: f64,
        /// Shift of the phase boundary, in seconds.
        offset_secs: f64,
    },
}

impl UtilizationModel {
    /// Convenience constructor for the mean-reverting walk.
    #[must_use]
    pub fn random_walk(mean: f64, sigma: f64, min: f64, max: f64, seed: u64) -> Self {
        UtilizationModel::RandomWalk {
            mean,
            sigma,
            min,
            max,
            seed,
        }
    }

    /// Builds a trace model from `time,utilization` CSV text (header line
    /// optional; blank lines and `#` comments skipped).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for malformed rows,
    /// unsorted times, out-of-range utilizations, or an empty trace.
    pub fn trace_from_csv(text: &str) -> Result<Self, String> {
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let (Some(t), Some(u)) = (parts.next(), parts.next()) else {
                return Err(format!("line {}: expected `time,utilization`", lineno + 1));
            };
            let (Ok(t), Ok(u)) = (t.trim().parse::<f64>(), u.trim().parse::<f64>()) else {
                if lineno == 0 {
                    continue; // header row
                }
                return Err(format!("line {}: non-numeric row", lineno + 1));
            };
            if !(0.0..=1.0).contains(&u) {
                return Err(format!(
                    "line {}: utilization {u} outside [0, 1]",
                    lineno + 1
                ));
            }
            if let Some((prev, _)) = points.last() {
                if t <= *prev {
                    return Err(format!("line {}: time {t} not increasing", lineno + 1));
                }
            }
            points.push((t, u));
        }
        if points.is_empty() {
            return Err("trace contains no samples".to_string());
        }
        Ok(UtilizationModel::Trace { points })
    }

    /// Instantiates the stateful generator.
    #[must_use]
    pub fn into_generator(self) -> UtilizationGenerator {
        let rng_seed = if let UtilizationModel::RandomWalk { seed, .. } = &self {
            *seed
        } else {
            0
        };
        let level = self.level_hint();
        UtilizationGenerator {
            model: self,
            rng: StdRng::seed_from_u64(rng_seed),
            walk: level,
        }
    }

    /// Long-run mean level of this model.
    #[must_use]
    pub fn level_hint(&self) -> f64 {
        match self {
            UtilizationModel::Constant(v) => *v,
            UtilizationModel::Sinusoid { mean, .. } => *mean,
            UtilizationModel::RandomWalk { mean, .. } => *mean,
            UtilizationModel::OnOff {
                on_level,
                off_level,
                on_secs,
                off_secs,
                ..
            } => (on_level * on_secs + off_level * off_secs) / (on_secs + off_secs),
            UtilizationModel::Trace { points } => {
                points.iter().map(|(_, u)| u).sum::<f64>() / points.len() as f64
            }
        }
    }
}

/// Stateful utilization trace generator. Call [`UtilizationGenerator::at`]
/// with monotonically non-decreasing times (the random walk advances once
/// per call).
#[derive(Debug, Clone)]
pub struct UtilizationGenerator {
    model: UtilizationModel,
    rng: StdRng,
    walk: f64,
}

impl UtilizationGenerator {
    /// Per-vCPU utilization at simulation time `t`, in `[0, 1]`.
    pub fn at(&mut self, t: SimTime) -> f64 {
        let secs = t.as_secs_f64();
        let raw = match &self.model {
            UtilizationModel::Constant(v) => *v,
            UtilizationModel::Sinusoid {
                mean,
                amplitude,
                period_secs,
                phase,
            } => mean + amplitude * (std::f64::consts::TAU * secs / period_secs + phase).sin(),
            UtilizationModel::RandomWalk {
                mean,
                sigma,
                min,
                max,
                ..
            } => {
                // Mean-revert then diffuse; one step per query.
                let noise: f64 = self.rng.gen_range(-1.0..1.0) * sigma;
                self.walk += 0.1 * (mean - self.walk) + noise;
                self.walk = self.walk.clamp(*min, *max);
                self.walk
            }
            UtilizationModel::OnOff {
                on_level,
                off_level,
                on_secs,
                off_secs,
                offset_secs,
            } => {
                let cycle = on_secs + off_secs;
                let pos = (secs + offset_secs).rem_euclid(cycle);
                if pos < *on_secs {
                    *on_level
                } else {
                    *off_level
                }
            }
            UtilizationModel::Trace { points } => sample_trace(points, secs),
        };
        raw.clamp(0.0, 1.0)
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &UtilizationModel {
        &self.model
    }
}

/// Linear interpolation in a sorted trace, looping past the end.
fn sample_trace(points: &[(f64, f64)], secs: f64) -> f64 {
    debug_assert!(!points.is_empty(), "empty trace");
    if points.len() == 1 {
        return points[0].1;
    }
    let span = points.last().expect("nonempty").0 - points[0].0;
    let t = if span > 0.0 {
        points[0].0 + (secs - points[0].0).rem_euclid(span)
    } else {
        points[0].0
    };
    let idx = points.partition_point(|(pt, _)| *pt <= t);
    if idx == 0 {
        return points[0].1;
    }
    if idx >= points.len() {
        return points.last().expect("nonempty").1;
    }
    let (t0, u0) = points[idx - 1];
    let (t1, u1) = points[idx];
    u0 + (u1 - u0) * (t - t0) / (t1 - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_sane_nominals() {
        for p in ALL_TASK_PROFILES {
            let u = p.nominal_cpu();
            assert!((0.0..=1.0).contains(&u), "{p}: {u}");
            let m = p.memory_intensity();
            assert!((0.0..=1.0).contains(&m), "{p}: {m}");
        }
    }

    #[test]
    fn profile_indices_are_unique_and_dense() {
        let mut seen = vec![false; ALL_TASK_PROFILES.len()];
        for p in ALL_TASK_PROFILES {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn constant_model_is_constant() {
        let mut g = UtilizationModel::Constant(0.42).into_generator();
        for s in [0, 100, 10_000] {
            assert_eq!(g.at(SimTime::from_secs(s)), 0.42);
        }
    }

    #[test]
    fn sinusoid_oscillates_around_mean_within_amplitude() {
        let mut g = UtilizationModel::Sinusoid {
            mean: 0.5,
            amplitude: 0.2,
            period_secs: 100.0,
            phase: 0.0,
        }
        .into_generator();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in 0..200 {
            let u = g.at(SimTime::from_secs(s));
            min = min.min(u);
            max = max.max(u);
        }
        assert!((0.3 - 1e-9..0.35).contains(&min), "min = {min}");
        assert!(max <= 0.7 + 1e-9 && max > 0.65, "max = {max}");
    }

    #[test]
    fn random_walk_stays_in_bounds_and_reverts() {
        let mut g = UtilizationModel::random_walk(0.9, 0.05, 0.75, 1.0, 42).into_generator();
        let mut sum = 0.0;
        let n = 2000;
        for s in 0..n {
            let u = g.at(SimTime::from_secs(s));
            assert!((0.75..=1.0).contains(&u), "step {s}: {u}");
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.9).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let run = |seed| {
            let mut g = UtilizationModel::random_walk(0.5, 0.1, 0.0, 1.0, seed).into_generator();
            (0..50)
                .map(|s| g.at(SimTime::from_secs(s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn on_off_alternates() {
        let mut g = UtilizationModel::OnOff {
            on_level: 0.9,
            off_level: 0.1,
            on_secs: 10.0,
            off_secs: 10.0,
            offset_secs: 0.0,
        }
        .into_generator();
        assert_eq!(g.at(SimTime::from_secs(5)), 0.9);
        assert_eq!(g.at(SimTime::from_secs(15)), 0.1);
        assert_eq!(g.at(SimTime::from_secs(25)), 0.9);
    }

    #[test]
    fn on_off_level_hint_is_duty_weighted() {
        let m = UtilizationModel::OnOff {
            on_level: 1.0,
            off_level: 0.0,
            on_secs: 30.0,
            off_secs: 10.0,
            offset_secs: 0.0,
        };
        assert!((m.level_hint() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bursty_profile_respects_seed_offset() {
        let mut a = TaskProfile::Bursty.utilization_model(0).into_generator();
        let mut b = TaskProfile::Bursty.utilization_model(300).into_generator();
        // With offsets 0 and 300 the phases differ at t=0.
        assert_ne!(a.at(SimTime::ZERO), b.at(SimTime::ZERO));
    }

    #[test]
    fn trace_model_interpolates_and_loops() {
        let m = UtilizationModel::Trace {
            points: vec![(0.0, 0.0), (10.0, 1.0), (20.0, 0.0)],
        };
        let mut g = m.into_generator();
        assert_eq!(g.at(SimTime::from_secs(0)), 0.0);
        assert_eq!(g.at(SimTime::from_secs(5)), 0.5);
        assert_eq!(g.at(SimTime::from_secs(10)), 1.0);
        assert_eq!(g.at(SimTime::from_secs(15)), 0.5);
        // Loops: t = 25 behaves like t = 5.
        assert_eq!(g.at(SimTime::from_secs(25)), 0.5);
    }

    #[test]
    fn trace_from_csv_parses_with_header_and_comments() {
        let csv = "time,util\n# ramp\n0,0.2\n30,0.8\n60,0.4\n";
        let m = UtilizationModel::trace_from_csv(csv).unwrap();
        match &m {
            UtilizationModel::Trace { points } => assert_eq!(points.len(), 3),
            other => panic!("unexpected model {other:?}"),
        }
        assert!((m.level_hint() - (0.2 + 0.8 + 0.4) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_from_csv_rejects_bad_rows() {
        assert!(UtilizationModel::trace_from_csv("").is_err());
        assert!(UtilizationModel::trace_from_csv("0,0.5\n1,1.5\n").is_err()); // range
        assert!(UtilizationModel::trace_from_csv("0,0.5\n0,0.6\n").is_err()); // order
        assert!(UtilizationModel::trace_from_csv("t,u\n0,0.5\nabc,def\n").is_err());
    }

    #[test]
    fn single_point_trace_is_constant() {
        let m = UtilizationModel::Trace {
            points: vec![(0.0, 0.7)],
        };
        let mut g = m.into_generator();
        assert_eq!(g.at(SimTime::from_secs(99)), 0.7);
    }

    #[test]
    fn every_profile_generates_bounded_traces() {
        for p in ALL_TASK_PROFILES {
            let mut g = p.utilization_model(123).into_generator();
            for s in (0..3600).step_by(30) {
                let u = g.at(SimTime::from_secs(s));
                assert!((0.0..=1.0).contains(&u), "{p} at {s}s: {u}");
            }
        }
    }
}
