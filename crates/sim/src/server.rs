//! Physical servers: capacity, hosted VMs, thermal state and sensors.

use crate::error::SimError;
use crate::fan::{FanBank, FanSpeed};
use crate::power::PowerModel;
use crate::sensor::{SensorConfig, TemperatureSensor};
use crate::thermal::{ThermalNetwork, ThermalParams, ThermalState};
use crate::time::SimTime;
use crate::vm::{Vm, VmId};
use crate::vmm::{split_power, CoreScheduler, MultiCoreNetwork, SchedulingPolicy};
use serde::{Deserialize, Serialize};
use vmtherm_units::{Celsius, Seconds, Utilization, Watts};

/// Opaque server identifier (index into the datacenter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(usize);

impl ServerId {
    /// Wraps a raw index.
    #[must_use]
    pub fn new(raw: usize) -> Self {
        ServerId(raw)
    }

    /// The raw index.
    #[must_use]
    pub fn raw(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Static configuration of a server — the θ_cpu, θ_memory, θ_fan inputs of
/// the paper's Eq. (2), plus the physical models behind them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    name: String,
    cores: u32,
    ghz_per_core: f64,
    memory_gb: f64,
    fans: FanBank,
    power: PowerModel,
    thermal: ThermalParams,
    sensor: SensorConfig,
    /// When set, the server models per-core temperatures with this vCPU
    /// scheduling policy, and the sensor reports the hottest core.
    core_scheduling: Option<SchedulingPolicy>,
}

impl ServerSpec {
    /// A commodity server with models scaled to the given capacity.
    ///
    /// # Panics
    ///
    /// Panics on zero cores or non-positive clock/memory.
    #[must_use]
    pub fn commodity(
        name: impl Into<String>,
        cores: u32,
        ghz_per_core: f64,
        memory_gb: f64,
        fan_count: u32,
    ) -> Self {
        assert!(cores > 0, "server needs cores");
        assert!(ghz_per_core > 0.0, "server needs a positive clock");
        assert!(memory_gb > 0.0, "server needs memory");
        ServerSpec {
            name: name.into(),
            cores,
            ghz_per_core,
            memory_gb,
            fans: FanBank::new(fan_count),
            power: PowerModel::for_capacity(cores, ghz_per_core),
            thermal: ThermalParams::default(),
            sensor: SensorConfig::default(),
            core_scheduling: None,
        }
    }

    /// The testbed-like default: 16 cores @ 2.4 GHz, 64 GB, 4 fans.
    #[must_use]
    pub fn standard(name: impl Into<String>) -> Self {
        ServerSpec::commodity(name, 16, 2.4, 64.0, 4)
    }

    /// Overrides the fan bank.
    #[must_use]
    pub fn with_fans(mut self, fans: FanBank) -> Self {
        self.fans = fans;
        self
    }

    /// Overrides the power model.
    #[must_use]
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Overrides the thermal parameters.
    #[must_use]
    pub fn with_thermal(mut self, thermal: ThermalParams) -> Self {
        self.thermal = thermal;
        self
    }

    /// Overrides the sensor model.
    #[must_use]
    pub fn with_sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }

    /// Enables per-core thermal modelling with the given vCPU scheduling
    /// policy: the sensor then reports the hottest core, as DTS-based
    /// monitoring does.
    #[must_use]
    pub fn with_core_scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.core_scheduling = Some(policy);
        self
    }

    /// The per-core scheduling policy, when per-core modelling is on.
    #[must_use]
    pub fn core_scheduling(&self) -> Option<SchedulingPolicy> {
        self.core_scheduling
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical core count.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Per-core clock (GHz).
    #[must_use]
    pub fn ghz_per_core(&self) -> f64 {
        self.ghz_per_core
    }

    /// Installed memory (GB) — θ_memory.
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Aggregate CPU capacity in core·GHz — θ_cpu.
    #[must_use]
    pub fn theta_cpu(&self) -> f64 {
        self.cores as f64 * self.ghz_per_core
    }

    /// Fan bank configuration.
    #[must_use]
    pub fn fans(&self) -> FanBank {
        self.fans
    }

    /// Power model.
    #[must_use]
    pub fn power(&self) -> PowerModel {
        self.power
    }

    /// Thermal network parameters.
    #[must_use]
    pub fn thermal(&self) -> ThermalParams {
        self.thermal
    }

    /// Sensor model.
    #[must_use]
    pub fn sensor(&self) -> SensorConfig {
        self.sensor
    }
}

/// A live server: hosted VMs plus thermal and sensor state.
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    spec: ServerSpec,
    fans: FanBank,
    vms: Vec<Vm>,
    network: ThermalNetwork,
    core_model: Option<(CoreScheduler, MultiCoreNetwork)>,
    sensor: TemperatureSensor,
    /// Extra vCPU-units of load imposed by in-flight migrations.
    migration_overhead: f64,
    /// Utilization computed during the last step, for telemetry.
    last_utilization: f64,
    /// Power computed during the last step (W).
    last_power: f64,
}

impl Server {
    /// Creates a server in thermal equilibrium with `ambient_c`.
    #[must_use]
    pub fn new(id: ServerId, spec: ServerSpec, ambient_c: Celsius, seed: u64) -> Self {
        let network = ThermalNetwork::new(spec.thermal(), ambient_c);
        let sensor = TemperatureSensor::new(spec.sensor(), seed ^ (id.raw() as u64) << 17);
        let fans = spec.fans();
        let core_model = spec.core_scheduling().map(|policy| {
            (
                CoreScheduler::new(spec.cores() as usize, policy),
                MultiCoreNetwork::from_lumped(spec.thermal(), spec.cores() as usize, ambient_c),
            )
        });
        Server {
            id,
            spec,
            fans,
            vms: Vec::new(),
            network,
            core_model,
            sensor,
            migration_overhead: 0.0,
            last_utilization: 0.0,
            last_power: 0.0,
        }
    }

    /// Identifier.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Static spec.
    #[must_use]
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Current fan bank (speed may differ from the spec if a policy or
    /// event changed it).
    #[must_use]
    pub fn fans(&self) -> FanBank {
        self.fans
    }

    /// Sets the fan speed level.
    pub fn set_fan_speed(&mut self, speed: FanSpeed) {
        self.fans.set_speed(speed);
    }

    /// Injects a fan failure: `n` more fans stop spinning.
    pub fn fail_fans(&mut self, n: u32) {
        self.fans.fail(n);
    }

    /// Repairs all failed fans.
    pub fn repair_fans(&mut self) {
        self.fans.repair();
    }

    /// Hosted VMs.
    #[must_use]
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Mutable access to hosted VMs (engine use).
    pub fn vms_mut(&mut self) -> &mut [Vm] {
        &mut self.vms
    }

    /// Places a VM on this server.
    ///
    /// # Errors
    ///
    /// [`SimError::InsufficientMemory`] if configured memory would exceed
    /// installed memory. CPU is intentionally *not* checked: clouds
    /// overcommit CPU, and oversubscription is one of the heterogeneity
    /// effects the paper's learner must capture.
    pub fn boot_vm(&mut self, vm: Vm) -> Result<(), SimError> {
        let used: f64 = self.vms.iter().map(|v| v.spec().memory_gb()).sum();
        let requested = vm.spec().memory_gb();
        if used + requested > self.spec.memory_gb() {
            return Err(SimError::InsufficientMemory {
                server: self.id,
                requested_gb: requested,
                available_gb: self.spec.memory_gb() - used,
            });
        }
        self.vms.push(vm);
        Ok(())
    }

    /// Removes and returns a VM (for stop or migration cut-over).
    pub fn take_vm(&mut self, id: VmId) -> Option<Vm> {
        let idx = self.vms.iter().position(|v| v.id() == id)?;
        Some(self.vms.remove(idx))
    }

    /// Whether this server hosts the VM.
    #[must_use]
    pub fn hosts(&self, id: VmId) -> bool {
        self.vms.iter().any(|v| v.id() == id)
    }

    /// Number of hosted VMs.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Adds (or removes, with a negative value) migration CPU overhead in
    /// vCPU units.
    pub fn add_migration_overhead(&mut self, delta_vcpus: f64) {
        self.migration_overhead = (self.migration_overhead + delta_vcpus).max(0.0);
    }

    /// Aggregate CPU utilization in `[0, 1]` at time `t`: total vCPU demand
    /// (plus migration overhead) over physical cores, saturating at 1.
    pub fn cpu_utilization(&mut self, t: SimTime) -> f64 {
        let demand: f64 =
            self.vms.iter_mut().map(|vm| vm.cpu_demand(t)).sum::<f64>() + self.migration_overhead;
        (demand / self.spec.cores() as f64).min(1.0)
    }

    /// Actively used memory across VMs (GB).
    #[must_use]
    pub fn active_memory_gb(&self) -> f64 {
        self.vms.iter().map(Vm::active_memory_gb).sum()
    }

    /// Advances the server's physics by `dt_secs` at time `t` under
    /// `ambient_c`, updating utilization, power, and the thermal network.
    ///
    /// With per-core modelling enabled
    /// ([`ServerSpec::with_core_scheduling`]), per-VM demand is scheduled
    /// onto cores, package power splits proportionally to core load, and
    /// the reported die temperature is the hottest core.
    pub fn step(&mut self, t: SimTime, ambient_c: Celsius, dt_secs: Seconds) {
        // One demand query per VM per step (workload generators advance on
        // each query).
        let mut demands: Vec<f64> = self.vms.iter_mut().map(|vm| vm.cpu_demand(t)).collect();
        if self.migration_overhead > 0.0 {
            demands.push(self.migration_overhead);
        }
        let total_demand: f64 = demands.iter().sum();
        let util = Utilization::saturating((total_demand / self.spec.cores() as f64).min(1.0));
        let power = self.spec.power().total_power(util, self.active_memory_gb());
        let r_sa = self.fans.sink_resistance();
        match &mut self.core_model {
            Some((scheduler, network)) => {
                let core_utils = scheduler.assign(&demands);
                let per_core = split_power(
                    Watts::new(power),
                    Watts::new(self.spec.power().idle_watts()),
                    &core_utils,
                );
                network.step(&per_core, ambient_c, r_sa, dt_secs);
            }
            None => self
                .network
                .step(Watts::new(power), ambient_c, r_sa, dt_secs),
        }
        self.last_utilization = util.as_fraction();
        self.last_power = power;
    }

    /// True die temperature (°C) — ground truth, not observable in a real
    /// deployment. With per-core modelling this is the hottest core.
    #[must_use]
    pub fn die_temperature(&self) -> f64 {
        match &self.core_model {
            Some((_, network)) => network.hottest_core(),
            None => self.network.die_temperature(),
        }
    }

    /// Per-core temperatures when per-core modelling is enabled.
    #[must_use]
    pub fn core_temperatures(&self) -> Option<&[f64]> {
        self.core_model.as_ref().map(|(_, n)| n.core_temperatures())
    }

    /// One sensor reading of the die temperature (noisy, quantized) — what
    /// a real deployment observes.
    pub fn read_sensor(&mut self) -> f64 {
        let t = self.die_temperature();
        self.sensor.read(Celsius::new(t))
    }

    /// The steady-state die temperature if current conditions persisted —
    /// used by ground-truth oracles in tests.
    #[must_use]
    pub fn steady_state_die(&self, utilization: Utilization, ambient_c: Celsius) -> f64 {
        let power = self
            .spec
            .power()
            .total_power(utilization, self.active_memory_gb());
        self.network
            .steady_state(Watts::new(power), ambient_c, self.fans.sink_resistance())
            .die_c
    }

    /// Utilization from the most recent [`Server::step`].
    #[must_use]
    pub fn last_utilization(&self) -> f64 {
        self.last_utilization
    }

    /// Power from the most recent [`Server::step`] (W).
    #[must_use]
    pub fn last_power(&self) -> f64 {
        self.last_power
    }

    /// Heat this server currently dumps into the room (W), including fans.
    #[must_use]
    pub fn room_heat_watts(&self) -> f64 {
        self.last_power + self.fans.fan_power()
    }

    /// Overrides the thermal state (experiment warm starts).
    pub fn set_thermal_state(&mut self, state: ThermalState) {
        self.network.set_state(state);
    }

    /// `true` when every input to this server's physics is constant
    /// between reconfiguration events: lumped thermal model (the per-core
    /// scheduler is stateful) and every hosted VM's demand time-invariant.
    /// Event-driven stepping may integrate across several ticks in one
    /// call only under this predicate — the integration is then bitwise
    /// identical to stepping every tick (see
    /// [`crate::thermal::ThermalNetwork::step`]'s sub-stepping).
    #[must_use]
    pub fn inputs_piecewise_constant(&self) -> bool {
        self.core_model.is_none() && self.vms.iter().all(Vm::demand_is_constant)
    }

    /// Largest instantaneous node temperature rate |dT/dt| (°C/s) of the
    /// lumped network at the current state, assuming the most recent power
    /// draw persists. `None` with per-core modelling, whose rates the
    /// event scheduler does not reason about.
    #[must_use]
    pub fn thermal_rate_c_per_s(&self, ambient_c: Celsius) -> Option<f64> {
        if self.core_model.is_some() {
            return None;
        }
        let (d_die, d_sink) = self.network.rates(
            Watts::new(self.last_power),
            ambient_c,
            self.fans.sink_resistance(),
        );
        Some(d_die.abs().max(d_sink.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amb(v: f64) -> Celsius {
        Celsius::new(v)
    }

    use crate::vm::VmSpec;
    use crate::workload::TaskProfile;

    fn server() -> Server {
        Server::new(ServerId::new(0), ServerSpec::standard("s0"), amb(25.0), 42)
    }

    fn vm(id: u64, vcpus: u32, mem: f64, task: TaskProfile) -> Vm {
        Vm::new(
            VmId::new(id),
            VmSpec::new(format!("vm{id}"), vcpus, mem, task),
            SimTime::ZERO,
            id,
        )
    }

    #[test]
    fn spec_theta_cpu() {
        let s = ServerSpec::standard("x");
        assert!((s.theta_cpu() - 38.4).abs() < 1e-12);
    }

    #[test]
    fn boot_respects_memory_capacity() {
        let mut s = server();
        assert!(s.boot_vm(vm(1, 2, 40.0, TaskProfile::Mixed)).is_ok());
        assert!(s.boot_vm(vm(2, 2, 20.0, TaskProfile::Mixed)).is_ok());
        let err = s.boot_vm(vm(3, 2, 10.0, TaskProfile::Mixed)).unwrap_err();
        assert!(matches!(err, SimError::InsufficientMemory { .. }));
        assert_eq!(s.vm_count(), 2);
    }

    #[test]
    fn cpu_overcommit_is_allowed_but_saturates() {
        let mut s = server();
        for i in 0..10 {
            s.boot_vm(vm(i, 4, 4.0, TaskProfile::CpuBound)).unwrap();
        }
        // 40 vcpus at ~0.9 on 16 cores: saturated.
        let u = s.cpu_utilization(SimTime::from_secs(10));
        assert_eq!(u, 1.0);
    }

    #[test]
    fn take_vm_removes_and_returns() {
        let mut s = server();
        s.boot_vm(vm(1, 1, 2.0, TaskProfile::Idle)).unwrap();
        assert!(s.hosts(VmId::new(1)));
        let out = s.take_vm(VmId::new(1)).unwrap();
        assert_eq!(out.id(), VmId::new(1));
        assert!(!s.hosts(VmId::new(1)));
        assert!(s.take_vm(VmId::new(1)).is_none());
    }

    #[test]
    fn idle_server_stays_near_ambient_plus_idle_power_rise() {
        let mut s = server();
        for sec in 0..1200 {
            s.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
        }
        // Idle power still produces some rise, but die stays modest.
        let t = s.die_temperature();
        assert!(t > 25.0 && t < 45.0, "idle die temp {t}");
    }

    #[test]
    fn loaded_server_runs_hotter_than_idle() {
        let mut idle = server();
        let mut busy = Server::new(ServerId::new(1), ServerSpec::standard("s1"), amb(25.0), 43);
        for i in 0..8 {
            busy.boot_vm(vm(i, 2, 4.0, TaskProfile::CpuBound)).unwrap();
        }
        for sec in 0..1200 {
            idle.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
            busy.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
        }
        assert!(
            busy.die_temperature() > idle.die_temperature() + 8.0,
            "busy {} vs idle {}",
            busy.die_temperature(),
            idle.die_temperature()
        );
    }

    #[test]
    fn migration_overhead_raises_utilization() {
        let mut s = server();
        s.boot_vm(vm(1, 4, 8.0, TaskProfile::Mixed)).unwrap();
        let base = s.cpu_utilization(SimTime::from_secs(1));
        s.add_migration_overhead(2.0);
        let with = s.cpu_utilization(SimTime::from_secs(1));
        assert!(with > base);
        s.add_migration_overhead(-5.0); // clamps at zero
        let cleared = s.cpu_utilization(SimTime::from_secs(1));
        assert!(cleared <= with);
    }

    #[test]
    fn sensor_reading_tracks_die_temperature() {
        let mut s = server();
        for i in 0..4 {
            s.boot_vm(vm(i, 4, 8.0, TaskProfile::CpuBound)).unwrap();
        }
        for sec in 0..900 {
            s.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
        }
        let true_t = s.die_temperature();
        let mean_reading: f64 = (0..100).map(|_| s.read_sensor()).sum::<f64>() / 100.0;
        assert!(
            (mean_reading - true_t).abs() < 0.5,
            "{mean_reading} vs {true_t}"
        );
    }

    #[test]
    fn more_fans_cooler_die_at_same_load() {
        let few = ServerSpec::commodity("few", 16, 2.4, 64.0, 2);
        let many = ServerSpec::commodity("many", 16, 2.4, 64.0, 6);
        let mut a = Server::new(ServerId::new(0), few, amb(25.0), 1);
        let mut b = Server::new(ServerId::new(1), many, amb(25.0), 1);
        for i in 0..4 {
            a.boot_vm(vm(i, 4, 8.0, TaskProfile::CpuBound)).unwrap();
            b.boot_vm(vm(10 + i, 4, 8.0, TaskProfile::CpuBound))
                .unwrap();
        }
        for sec in 0..1200 {
            a.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
            b.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
        }
        assert!(b.die_temperature() < a.die_temperature() - 2.0);
    }

    #[test]
    fn per_core_mode_reports_hottest_core() {
        use crate::vmm::SchedulingPolicy;
        // Same workload, pinned vs balanced scheduling: pinned concentrates
        // heat so the reported (hottest-core) temperature is higher.
        let run = |policy: SchedulingPolicy| {
            let spec = ServerSpec::standard("pc").with_core_scheduling(policy);
            let mut s = Server::new(ServerId::new(0), spec, amb(25.0), 9);
            // Two 4-vCPU cpu-bound VMs on 16 cores: skew is possible.
            s.boot_vm(vm(1, 4, 8.0, TaskProfile::CpuBound)).unwrap();
            s.boot_vm(vm(2, 4, 8.0, TaskProfile::CpuBound)).unwrap();
            for sec in 0..1200 {
                s.step(SimTime::from_secs(sec), amb(25.0), Seconds::new(1.0));
            }
            assert!(s.core_temperatures().is_some());
            s.die_temperature()
        };
        let pinned = run(SchedulingPolicy::Pinned);
        let balanced = run(SchedulingPolicy::Balanced);
        assert!(
            pinned > balanced + 2.0,
            "pinned {pinned} not hotter than balanced {balanced}"
        );
        // Lumped mode has no core view.
        let lumped = Server::new(ServerId::new(1), ServerSpec::standard("l"), amb(25.0), 9);
        assert!(lumped.core_temperatures().is_none());
    }

    #[test]
    fn room_heat_includes_fans() {
        let mut s = server();
        s.step(SimTime::ZERO, amb(25.0), Seconds::new(1.0));
        assert!(s.room_heat_watts() > s.last_power());
    }
}
