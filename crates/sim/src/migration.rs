//! Live VM migration mechanics.
//!
//! Migration is the scenario that breaks classical temperature models and
//! motivates the paper: "for more complicated scenarios such as Virtual
//! Machine migration, these approaches are unable to model CPU
//! temperature." A pre-copy live migration
//!
//! 1. runs for a duration proportional to the VM's memory over the
//!    migration bandwidth (times a dirty-page retransmission factor),
//! 2. burns extra CPU on both source (page tracking + send) and
//!    destination (receive + apply) while in flight,
//! 3. atomically moves the VM at cut-over.
//!
//! The engine owns the in-flight bookkeeping; this module computes the
//! physics and carries the plan.

use crate::server::ServerId;
use crate::time::{SimDuration, SimTime};
use crate::vm::VmId;
use serde::{Deserialize, Serialize};

/// Tunable constants of the migration path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Usable migration bandwidth (Gbit/s).
    pub bandwidth_gbps: f64,
    /// Total bytes sent as a multiple of VM memory (pre-copy rounds).
    pub dirty_page_factor: f64,
    /// Extra vCPU-units of load on the source while migrating.
    pub source_overhead_vcpus: f64,
    /// Extra vCPU-units of load on the destination while migrating.
    pub dest_overhead_vcpus: f64,
}

impl MigrationConfig {
    /// Transfer duration for a VM with `memory_gb` of configured memory.
    /// At 10 Gbit/s and factor 1.3, an 8 GB VM takes ≈ 8.3 s.
    #[must_use]
    pub fn duration_for(&self, memory_gb: f64) -> SimDuration {
        let bits = memory_gb.max(0.0) * 8.0 * self.dirty_page_factor * 1e9;
        let secs = bits / (self.bandwidth_gbps * 1e9);
        SimDuration::from_millis((secs * 1000.0).ceil() as u64)
    }
}

impl Default for MigrationConfig {
    /// 10 GbE, 1.3× dirty-page factor, 0.5/0.3 vCPU overheads — in line
    /// with measured KVM/Xen pre-copy costs.
    fn default() -> Self {
        MigrationConfig {
            bandwidth_gbps: 10.0,
            dirty_page_factor: 1.3,
            source_overhead_vcpus: 0.5,
            dest_overhead_vcpus: 0.3,
        }
    }
}

/// An in-flight migration tracked by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveMigration {
    /// The VM being moved.
    pub vm: VmId,
    /// Where it currently executes.
    pub source: ServerId,
    /// Where it will land.
    pub dest: ServerId,
    /// When the pre-copy began.
    pub started: SimTime,
    /// Total transfer duration.
    pub duration: SimDuration,
}

impl ActiveMigration {
    /// Cut-over instant: when the VM switches hosts.
    #[must_use]
    pub fn completes_at(&self) -> SimTime {
        self.started + self.duration
    }

    /// Whether the migration has finished by `now`.
    #[must_use]
    pub fn is_complete(&self, now: SimTime) -> bool {
        now >= self.completes_at()
    }

    /// Transfer progress in `[0, 1]` at `now`.
    #[must_use]
    pub fn progress(&self, now: SimTime) -> f64 {
        if self.duration.is_zero() {
            return 1.0;
        }
        let elapsed = now.saturating_duration_since(self.started).as_secs_f64();
        (elapsed / self.duration.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_memory_and_bandwidth() {
        let cfg = MigrationConfig::default();
        let small = cfg.duration_for(4.0);
        let large = cfg.duration_for(16.0);
        assert!(large.as_secs_f64() > 3.9 * small.as_secs_f64());

        let fast = MigrationConfig {
            bandwidth_gbps: 40.0,
            ..cfg
        };
        assert!(fast.duration_for(8.0) < cfg.duration_for(8.0));
    }

    #[test]
    fn eight_gb_over_10gbe_takes_seconds() {
        let d = MigrationConfig::default().duration_for(8.0);
        let s = d.as_secs_f64();
        assert!((5.0..15.0).contains(&s), "duration {s}s");
    }

    #[test]
    fn zero_memory_is_instant() {
        assert!(MigrationConfig::default().duration_for(0.0).is_zero());
    }

    #[test]
    fn completion_and_progress() {
        let m = ActiveMigration {
            vm: VmId::new(1),
            source: ServerId::new(0),
            dest: ServerId::new(1),
            started: SimTime::from_secs(100),
            duration: SimDuration::from_secs(10),
        };
        assert_eq!(m.completes_at(), SimTime::from_secs(110));
        assert!(!m.is_complete(SimTime::from_secs(109)));
        assert!(m.is_complete(SimTime::from_secs(110)));
        assert_eq!(m.progress(SimTime::from_secs(100)), 0.0);
        assert_eq!(m.progress(SimTime::from_secs(105)), 0.5);
        assert_eq!(m.progress(SimTime::from_secs(999)), 1.0);
        // Before start: saturates to zero.
        assert_eq!(m.progress(SimTime::from_secs(50)), 0.0);
    }

    #[test]
    fn zero_duration_is_always_complete() {
        let m = ActiveMigration {
            vm: VmId::new(1),
            source: ServerId::new(0),
            dest: ServerId::new(1),
            started: SimTime::ZERO,
            duration: SimDuration::ZERO,
        };
        assert_eq!(m.progress(SimTime::ZERO), 1.0);
        assert!(m.is_complete(SimTime::ZERO));
    }
}
