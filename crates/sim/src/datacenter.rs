//! A datacenter: a fleet of servers with rack grouping.

use crate::error::SimError;
use crate::server::{Server, ServerId, ServerSpec};
use crate::vm::VmId;
use serde::{Deserialize, Serialize};
use vmtherm_units::Celsius;

/// Rack label; servers in the same rack share airflow peculiarities
/// (modelled as a per-rack ambient offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(usize);

impl RackId {
    /// Wraps a raw rack index.
    #[must_use]
    pub fn new(raw: usize) -> Self {
        RackId(raw)
    }

    /// The raw index.
    #[must_use]
    pub fn raw(self) -> usize {
        self.0
    }
}

/// The server fleet.
#[derive(Debug, Clone)]
pub struct Datacenter {
    servers: Vec<Server>,
    racks: Vec<RackId>,
    /// Ambient offset per rack (°C above the room inlet) — top-of-rack
    /// servers run slightly warmer.
    rack_offsets: Vec<f64>,
}

impl Datacenter {
    /// An empty datacenter.
    #[must_use]
    pub fn new() -> Self {
        Datacenter {
            servers: Vec::new(),
            racks: Vec::new(),
            rack_offsets: Vec::new(),
        }
    }

    /// Builds a datacenter of `count` identical servers from a spec
    /// template, `per_rack` servers per rack, all starting at `ambient_c`.
    #[must_use]
    pub fn homogeneous(
        template: &ServerSpec,
        count: usize,
        per_rack: usize,
        ambient_c: Celsius,
        seed: u64,
    ) -> Self {
        let mut dc = Datacenter::new();
        for i in 0..count {
            let spec = ServerSpec::commodity(
                format!("{}-{i}", template.name()),
                template.cores(),
                template.ghz_per_core(),
                template.memory_gb(),
                template.fans().count(),
            )
            .with_power(template.power())
            .with_thermal(template.thermal())
            .with_sensor(template.sensor());
            let rack = RackId::new(i.checked_div(per_rack).unwrap_or(0));
            dc.add_server_in_rack(spec, rack, ambient_c, seed.wrapping_add(i as u64));
        }
        dc
    }

    /// Adds a server in rack 0 and returns its id.
    pub fn add_server(&mut self, spec: ServerSpec, ambient_c: Celsius, seed: u64) -> ServerId {
        self.add_server_in_rack(spec, RackId::new(0), ambient_c, seed)
    }

    /// Adds a server in a given rack and returns its id.
    pub fn add_server_in_rack(
        &mut self,
        spec: ServerSpec,
        rack: RackId,
        ambient_c: Celsius,
        seed: u64,
    ) -> ServerId {
        let id = ServerId::new(self.servers.len());
        self.servers.push(Server::new(id, spec, ambient_c, seed));
        self.racks.push(rack);
        while self.rack_offsets.len() <= rack.raw() {
            // Default: each successive rack runs 0.3 °C warmer (recirculation).
            self.rack_offsets.push(self.rack_offsets.len() as f64 * 0.3);
        }
        id
    }

    /// Overrides a rack's ambient offset, a relative delta in °C.
    pub fn set_rack_offset(&mut self, rack: RackId, offset_deg: f64) {
        while self.rack_offsets.len() <= rack.raw() {
            self.rack_offsets.push(0.0);
        }
        self.rack_offsets[rack.raw()] = offset_deg;
    }

    /// Number of servers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `true` when the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Immutable server access.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an out-of-range id.
    pub fn server(&self, id: ServerId) -> Result<&Server, SimError> {
        self.servers
            .get(id.raw())
            .ok_or(SimError::UnknownServer(id))
    }

    /// Mutable server access.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an out-of-range id.
    pub fn server_mut(&mut self, id: ServerId) -> Result<&mut Server, SimError> {
        self.servers
            .get_mut(id.raw())
            .ok_or(SimError::UnknownServer(id))
    }

    /// Iterates all servers.
    pub fn iter(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter()
    }

    /// Iterates all servers mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Server> {
        self.servers.iter_mut()
    }

    /// All servers as one mutable slice, in stable id order.
    ///
    /// The sharded engine splits this slice into disjoint contiguous
    /// chunks (see [`crate::shard`]), so each worker thread owns an
    /// exclusive range of servers.
    pub fn servers_mut(&mut self) -> &mut [Server] {
        &mut self.servers
    }

    /// The rack a server sits in.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an out-of-range id.
    pub fn rack_of(&self, id: ServerId) -> Result<RackId, SimError> {
        self.racks
            .get(id.raw())
            .copied()
            .ok_or(SimError::UnknownServer(id))
    }

    /// The ambient offset a server experiences (°C above room inlet).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownServer`] for an out-of-range id.
    pub fn ambient_offset(&self, id: ServerId) -> Result<f64, SimError> {
        let rack = self.rack_of(id)?;
        Ok(self.rack_offsets.get(rack.raw()).copied().unwrap_or(0.0))
    }

    /// Which server hosts a VM, if any.
    #[must_use]
    pub fn locate_vm(&self, vm: VmId) -> Option<ServerId> {
        self.servers.iter().find(|s| s.hosts(vm)).map(Server::id)
    }

    /// Total heat the fleet dumps into the room (kW), from the last step.
    #[must_use]
    pub fn room_heat_kw(&self) -> f64 {
        self.servers
            .iter()
            .map(Server::room_heat_watts)
            .sum::<f64>()
            / 1000.0
    }

    /// The hottest server by true die temperature, if any.
    #[must_use]
    pub fn hottest(&self) -> Option<(ServerId, f64)> {
        self.servers
            .iter()
            .map(|s| (s.id(), s.die_temperature()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl Default for Datacenter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::vm::{Vm, VmSpec};
    use crate::workload::TaskProfile;
    use vmtherm_units::Seconds;

    #[test]
    fn homogeneous_builds_fleet_with_racks() {
        let template = ServerSpec::standard("node");
        let dc = Datacenter::homogeneous(&template, 6, 2, Celsius::new(25.0), 1);
        assert_eq!(dc.len(), 6);
        assert_eq!(dc.rack_of(ServerId::new(0)).unwrap(), RackId::new(0));
        assert_eq!(dc.rack_of(ServerId::new(5)).unwrap(), RackId::new(2));
        // Later racks run warmer by default.
        assert!(dc.ambient_offset(ServerId::new(5)).unwrap() > 0.0);
    }

    #[test]
    fn unknown_server_is_an_error() {
        let dc = Datacenter::new();
        assert!(matches!(
            dc.server(ServerId::new(0)),
            Err(SimError::UnknownServer(_))
        ));
        assert!(dc.rack_of(ServerId::new(3)).is_err());
    }

    #[test]
    fn locate_vm_finds_host() {
        let mut dc = Datacenter::new();
        let s0 = dc.add_server(ServerSpec::standard("a"), Celsius::new(25.0), 1);
        let s1 = dc.add_server(ServerSpec::standard("b"), Celsius::new(25.0), 2);
        let vm = Vm::new(
            crate::vm::VmId::new(9),
            VmSpec::new("x", 1, 2.0, TaskProfile::Idle),
            SimTime::ZERO,
            0,
        );
        dc.server_mut(s1).unwrap().boot_vm(vm).unwrap();
        assert_eq!(dc.locate_vm(crate::vm::VmId::new(9)), Some(s1));
        assert_ne!(dc.locate_vm(crate::vm::VmId::new(9)), Some(s0));
        assert_eq!(dc.locate_vm(crate::vm::VmId::new(99)), None);
    }

    #[test]
    fn rack_offset_override() {
        let mut dc = Datacenter::new();
        let id = dc.add_server_in_rack(
            ServerSpec::standard("a"),
            RackId::new(2),
            Celsius::new(25.0),
            1,
        );
        dc.set_rack_offset(RackId::new(2), 1.5);
        assert_eq!(dc.ambient_offset(id).unwrap(), 1.5);
    }

    #[test]
    fn hottest_finds_loaded_server() {
        let mut dc = Datacenter::new();
        let s0 = dc.add_server(ServerSpec::standard("cool"), Celsius::new(25.0), 1);
        let s1 = dc.add_server(ServerSpec::standard("hot"), Celsius::new(25.0), 2);
        for i in 0..6 {
            let vm = Vm::new(
                crate::vm::VmId::new(i),
                VmSpec::new(format!("v{i}"), 4, 4.0, TaskProfile::CpuBound),
                SimTime::ZERO,
                i,
            );
            dc.server_mut(s1).unwrap().boot_vm(vm).unwrap();
        }
        for t in 0..900 {
            let now = SimTime::from_secs(t);
            for s in dc.iter_mut() {
                s.step(now, Celsius::new(25.0), Seconds::new(1.0));
            }
        }
        let (hottest, temp) = dc.hottest().unwrap();
        assert_eq!(hottest, s1);
        assert!(temp > dc.server(s0).unwrap().die_temperature());
    }

    #[test]
    fn room_heat_aggregates() {
        let mut dc = Datacenter::new();
        dc.add_server(ServerSpec::standard("a"), Celsius::new(25.0), 1);
        dc.add_server(ServerSpec::standard("b"), Celsius::new(25.0), 2);
        for s in dc.iter_mut() {
            s.step(SimTime::ZERO, Celsius::new(25.0), Seconds::new(1.0));
        }
        assert!(dc.room_heat_kw() > 0.1);
    }
}
