//! Error type for the prediction pipeline.

use std::error::Error;
use std::fmt;
use vmtherm_svm::SvmError;

/// Errors produced by training, prediction and management operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PredictError {
    /// The underlying SVM library failed.
    Svm(SvmError),
    /// Training was attempted with no experiment records.
    NoTrainingData,
    /// A model was asked to predict before being trained/anchored.
    NotReady(&'static str),
    /// A configuration value was out of its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        message: String,
    },
}

impl PredictError {
    pub(crate) fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        PredictError::InvalidConfig {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Svm(e) => write!(f, "svm error: {e}"),
            PredictError::NoTrainingData => write!(f, "no training records provided"),
            PredictError::NotReady(what) => write!(f, "predictor not ready: {what}"),
            PredictError::InvalidConfig { name, message } => {
                write!(f, "invalid config `{name}`: {message}")
            }
        }
    }
}

impl Error for PredictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PredictError::Svm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SvmError> for PredictError {
    fn from(e: SvmError) -> Self {
        PredictError::Svm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PredictError::from(SvmError::EmptyDataset);
        assert!(e.to_string().contains("svm error"));
        assert!(e.source().is_some());
        assert_eq!(
            PredictError::NoTrainingData.to_string(),
            "no training records provided"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PredictError>();
    }
}
