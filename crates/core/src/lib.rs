//! # vmtherm-core
//!
//! VM-level CPU temperature profiling and prediction for cloud
//! datacenters — a from-scratch reproduction of **Wu, Li, Garraghan,
//! Jiang, Ye & Zomaya, "Virtual Machine Level Temperature Profiling and
//! Prediction in Cloud Datacenters", ICDCS 2016**.
//!
//! Two predictors, exactly as in the paper:
//!
//! 1. **Stable temperature** ([`stable::StablePredictor`]): an ε-SVR with
//!    RBF kernel (grid-searched, 10-fold CV) maps the Eq. (2) feature
//!    vector `(θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env)` to the stable CPU
//!    temperature ψ_stable of Eq. (1).
//! 2. **Dynamic temperature** ([`dynamic::DynamicPredictor`]): the
//!    pre-defined logarithmic curve ψ*(t) of Eq. (3), calibrated online
//!    with learning rate λ = 0.8 every Δ_update seconds (Eqs. 4–8), and
//!    re-anchored at reconfigurations (VM boot/stop/migration).
//!
//! Plus the baselines the paper positions itself against
//! ([`baseline`]: RC model \[5\], task-temperature profiles \[4\], naive
//! persistence, linear regression), the evaluation harness ([`eval`]), a
//! thermal-management layer built on the predictions ([`manager`]), and a
//! thermal anomaly detector that turns persistent prediction residuals
//! into fault alarms ([`anomaly`]). Further extensions: split-conformal
//! prediction intervals ([`interval`]), sliding-window online retraining
//! ([`online`]), predictive CRAC setpoint optimization ([`setpoint`]) and
//! a fleet monitor with automatic re-anchoring ([`monitor`]) and its
//! thread-parallel sharded form with deterministic merge ([`fleet`]).
//!
//! ## End-to-end example
//!
//! ```
//! use vmtherm_core::dynamic::{DynamicConfig, DynamicPredictor};
//! use vmtherm_core::predictor::OnlinePredictor;
//! use vmtherm_core::stable::{run_experiments, StablePredictor, TrainingOptions};
//! use vmtherm_core::units::{Celsius, Seconds};
//! use vmtherm_sim::{CaseGenerator, SimDuration};
//! use vmtherm_svm::svr::SvrParams;
//!
//! # fn main() -> Result<(), vmtherm_core::error::PredictError> {
//! // 1. Collect training records (the paper's experiment campaign).
//! let mut cases = CaseGenerator::new(7);
//! let configs: Vec<_> = cases
//!     .random_cases(12, 0)
//!     .into_iter()
//!     .map(|c| c.with_duration(SimDuration::from_secs(700)))
//!     .collect();
//! let outcomes = run_experiments(&configs);
//!
//! // 2. Train the stable model (fixed params here; grid search by default).
//! let options = TrainingOptions::new().with_params(SvrParams::new().with_c(64.0));
//! let stable = StablePredictor::fit(&outcomes, &options)?;
//!
//! // 3. Predict ψ_stable for a configuration, then run the dynamic
//! //    predictor from the current temperature toward it.
//! let snapshot = &outcomes[0].snapshot;
//! let psi = stable.predict(snapshot);
//! let mut dynamic = DynamicPredictor::new(DynamicConfig::new())?;
//! dynamic.anchor(Seconds::ZERO, Celsius::new(25.0), Celsius::new(psi));
//! dynamic.observe(Seconds::new(15.0), Celsius::new(31.0));
//! let forecast = dynamic.predict_ahead(Seconds::new(15.0), Seconds::new(60.0)); // ψ(75) per Eq. (8)
//! assert!(forecast.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` rejects NaN as well as non-positive values — the validation
// idiom used throughout; and numeric solver loops index several parallel
// arrays at once, where iterator zips would obscure the maths.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod anomaly;
pub mod baseline;
pub mod calibration;
pub mod curve;
pub mod dynamic;
pub mod error;
pub mod eval;
pub mod features;
pub mod fleet;
pub mod interval;
pub mod manager;
pub mod monitor;
pub mod online;
pub mod predictor;
pub mod setpoint;
pub mod stable;
/// Unit-safety newtypes shared across the workspace, re-exported from
/// [`vmtherm_units`] so predictor callers need only one dependency.
pub mod units {
    pub use vmtherm_units::*;
}

pub use anomaly::{NoveltyDetector, ResidualDetector, ThermalWatchdog};
pub use calibration::Calibrator;
pub use curve::WarmupCurve;
pub use dynamic::{DynamicConfig, DynamicPredictor};
pub use error::PredictError;
pub use features::FeatureEncoding;
pub use fleet::ShardedMonitor;
pub use interval::{Interval, IntervalPredictor};
pub use monitor::{DegradationPolicy, DegradationStats, FleetMonitor};
pub use online::OnlineTrainer;
pub use predictor::OnlinePredictor;
pub use setpoint::{SetpointAdvice, SetpointOptimizer, SetpointSearch};
pub use stable::{StablePredictor, TrainingOptions};
