//! Sharded fleet monitoring: thread-parallel [`FleetMonitor`] shards
//! with a deterministic merge.
//!
//! A [`ShardedMonitor`] partitions the fleet into contiguous server
//! ranges (via [`vmtherm_sim::shard::shard_bounds`]), owns one ranged
//! [`FleetMonitor`] per shard, and steps them on a scoped worker pool
//! ([`vmtherm_sim::shard::for_each_chunk`]). Each shard only mutates
//! its own per-server state — predictors, pending forecasts, P²
//! sketches — through an exclusive borrow, so per-server results are
//! **bit-identical for any thread count and any shard partitioning**.
//!
//! Fleet-level values are *reduced serially after the parallel phase*,
//! always in global server-index order:
//!
//! - [`ShardedMonitor::fleet_mse`] concatenates the shards'
//!   [`FleetMonitor::server_stats`] slices and folds them with exactly
//!   the floating-point association a whole-fleet monitor uses, so the
//!   result is bitwise equal to `FleetMonitor::fleet_mse` on one
//!   monitor covering the same servers.
//! - [`ShardedMonitor::fleet_pred_err`] folds the per-server forecast
//!   -error sketches into an [`obs::MergedQuantiles`] in server order,
//!   again matching the unsharded fold bit for bit.
//!
//! What is *not* bit-stable across thread counts: wall-clock timing
//! metrics (`vmtherm_monitor_observe_ns`), the global forecast-error
//! histogram's float sum (atomic CAS adds commute only up to FP
//! rounding), and the interleaving of observability events across
//! shards. Counters remain exact (atomic integer adds commute).

use crate::dynamic::DynamicConfig;
use crate::error::PredictError;
use crate::monitor::{DegradationPolicy, DegradationStats, FleetMonitor, ServerStats};
use crate::stable::StablePredictor;
use vmtherm_obs::{self as obs, names};
use vmtherm_sim::shard;
use vmtherm_sim::{ServerId, Simulation};
use vmtherm_units::{Celsius, Seconds};

/// Fleet-level roll-up gauges, registered lazily when the obs layer is
/// enabled (mirrors the per-server gauge registration in `monitor`).
#[derive(Debug)]
struct FleetGauges {
    mse: obs::Gauge,
    pred_err_p95: obs::Gauge,
}

impl FleetGauges {
    fn register() -> FleetGauges {
        let reg = obs::global();
        FleetGauges {
            mse: reg.gauge(names::METRIC_MONITOR_FLEET_MSE),
            pred_err_p95: reg.gauge(names::METRIC_MONITOR_FLEET_PRED_ERR_P95),
        }
    }
}

/// A fleet monitor partitioned into independently steppable shards.
///
/// Public accessors take **global** server ids and route to the owning
/// shard, so a `ShardedMonitor` is a drop-in replacement for one
/// [`FleetMonitor`] over the whole fleet — with `observe` running the
/// per-shard work on up to `threads` worker threads.
#[derive(Debug)]
pub struct ShardedMonitor {
    shards: Vec<FleetMonitor>,
    servers: usize,
    threads: usize,
    fleet_gauges: Option<FleetGauges>,
}

impl ShardedMonitor {
    /// Creates a monitor for `servers` hosts split into `shards`
    /// contiguous ranges, stepping on up to `threads` worker threads
    /// (both clamped to at least 1; shards above `servers` collapse).
    ///
    /// # Errors
    ///
    /// Propagates invalid [`DynamicConfig`]s.
    pub fn new(
        stable: &StablePredictor,
        config: DynamicConfig,
        servers: usize,
        gap_secs: Seconds,
        shards: usize,
        threads: usize,
    ) -> Result<Self, PredictError> {
        let monitors: Result<Vec<_>, _> = shard::shard_bounds(servers, shards)
            .into_iter()
            .map(|(lo, hi)| FleetMonitor::with_range(stable.clone(), config, lo, hi - lo, gap_secs))
            .collect();
        Ok(ShardedMonitor {
            shards: monitors?,
            servers,
            threads: threads.max(1),
            fleet_gauges: None,
        })
    }

    /// Replaces the degradation policy on every shard.
    ///
    /// # Errors
    ///
    /// Rejects invalid policies (see [`FleetMonitor::with_policy`]).
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Result<Self, PredictError> {
        let monitors: Result<Vec<_>, _> = self
            .shards
            .into_iter()
            .map(|m| m.with_policy(policy))
            .collect();
        self.shards = monitors?;
        Ok(self)
    }

    /// Sets the die-temperature limit the headroom gauges measure
    /// against, on every shard.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive limits.
    pub fn with_temp_limit(mut self, limit: Celsius) -> Result<Self, PredictError> {
        let monitors: Result<Vec<_>, _> = self
            .shards
            .into_iter()
            .map(|m| m.with_temp_limit(limit))
            .collect();
        self.shards = monitors?;
        Ok(self)
    }

    /// Total servers covered across all shards.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of shards the fleet is partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads `observe` may use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker-thread budget (clamped to at least 1). Has no
    /// effect on results — only on wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The per-shard monitors, in ascending server-range order.
    #[must_use]
    pub fn shards(&self) -> &[FleetMonitor] {
        &self.shards
    }

    fn shard_for(&self, server: ServerId) -> Option<&FleetMonitor> {
        let idx = server.raw();
        self.shards
            .iter()
            .find(|m| idx >= m.first_server() && idx < m.first_server() + m.servers())
    }

    /// Ingests new telemetry into every shard, in parallel.
    ///
    /// Equivalent to calling [`FleetMonitor::observe`] on each shard in
    /// order; because shards only touch their own server range, running
    /// them concurrently produces bit-identical per-server state.
    /// Fleet-level gauges are reduced serially afterwards, in shard
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has more servers than this monitor
    /// covers.
    pub fn observe(&mut self, sim: &Simulation, ambient_c: Celsius) {
        assert!(
            sim.datacenter().len() <= self.servers,
            "monitor covers {} servers, simulation has {}",
            self.servers,
            sim.datacenter().len()
        );
        let threads = self.threads;
        let chunks = self.shards.len();
        shard::for_each_chunk(&mut self.shards, chunks, threads, |_, chunk| {
            for monitor in chunk {
                monitor.observe(sim, ambient_c);
            }
        });
        if obs::enabled() {
            let mse = self.fleet_mse();
            let p95 = self.fleet_pred_err().quantile(0.95);
            let gauges = self.fleet_gauges.get_or_insert_with(FleetGauges::register);
            gauges.mse.set(mse);
            gauges.pred_err_p95.set(p95);
        }
    }

    /// Fleet-wide MSE over all matured forecasts (`NaN` before any).
    ///
    /// Folds the concatenated per-server stats in global index order —
    /// the same accumulator association as [`FleetMonitor::fleet_mse`]
    /// on an unsharded monitor, so the value is bitwise identical.
    #[must_use]
    pub fn fleet_mse(&self) -> f64 {
        let scored: usize = self
            .shards
            .iter()
            .flat_map(|m| m.server_stats())
            .map(|s| s.scored)
            .sum();
        if scored == 0 {
            return f64::NAN;
        }
        let sum: f64 = self
            .shards
            .iter()
            .flat_map(|m| m.server_stats())
            .map(|s| s.sum_sq_err)
            .sum();
        sum / scored as f64
    }

    /// Fleet-level forecast-error roll-up, folded per server in global
    /// index order (bitwise identical to the unsharded fold).
    #[must_use]
    pub fn fleet_pred_err(&self) -> obs::MergedQuantiles {
        let mut merged = obs::MergedQuantiles::new();
        for monitor in &self.shards {
            for sketch in monitor.pred_err_sketches() {
                merged.absorb(sketch);
            }
        }
        merged
    }

    /// Per-server accuracy stats (zeros for unknown servers).
    #[must_use]
    pub fn stats(&self, server: ServerId) -> ServerStats {
        self.shard_for(server)
            .map(|m| m.stats(server))
            .unwrap_or_default()
    }

    /// Per-server degradation stats (zeros for unknown servers).
    #[must_use]
    pub fn degradation(&self, server: ServerId) -> DegradationStats {
        self.shard_for(server)
            .map(|m| m.degradation(server))
            .unwrap_or_default()
    }

    /// Whether a server's stream is currently in holdover.
    #[must_use]
    pub fn in_holdover(&self, server: ServerId) -> bool {
        self.shard_for(server)
            .is_some_and(|m| m.in_holdover(server))
    }

    /// Rolling MSE over a server's most recent forecasts (`NaN` before
    /// any, or for unknown servers).
    #[must_use]
    pub fn rolling_mse(&self, server: ServerId) -> f64 {
        self.shard_for(server)
            .map_or(f64::NAN, |m| m.rolling_mse(server))
    }

    /// How many times a server has been re-anchored.
    #[must_use]
    pub fn reanchor_count(&self, server: ServerId) -> u64 {
        self.shard_for(server)
            .map_or(0, |m| m.reanchor_count(server))
    }

    /// Simulation time (s) of a server's most recent anchor.
    #[must_use]
    pub fn last_anchor_secs(&self, server: ServerId) -> f64 {
        self.shard_for(server)
            .map_or(0.0, |m| m.last_anchor_secs(server))
    }

    /// Forecasts issued for a server that have not matured yet.
    #[must_use]
    pub fn pending_forecasts(&self, server: ServerId) -> usize {
        self.shard_for(server)
            .map_or(0, |m| m.pending_forecasts(server))
    }

    /// The most recently issued forecast for a server as
    /// `(target_secs, value_c)`.
    #[must_use]
    pub fn latest_forecast(&self, server: ServerId) -> Option<(f64, f64)> {
        self.shard_for(server)
            .and_then(|m| m.latest_forecast(server))
    }

    /// One server's absolute forecast-error P² sketch.
    #[must_use]
    pub fn pred_err_sketch(&self, server: ServerId) -> Option<&obs::QuantileSketch> {
        self.shard_for(server)
            .and_then(|m| m.pred_err_sketch(server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::fault::{DropoutFault, FaultPlan, JitterFault, SpikeFault};
    use vmtherm_sim::{
        AmbientModel, CaseGenerator, Datacenter, Event, ServerSpec, SimDuration, SimTime,
        TaskProfile, VmSpec,
    };
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    const SERVERS: usize = 5;

    fn stable_model() -> StablePredictor {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(30, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(900)))
            .collect();
        let outcomes = run_experiments(&configs);
        StablePredictor::fit(
            &outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    fn fleet_sim(faulted: bool) -> Simulation {
        let mut dc = Datacenter::new();
        for i in 0..SERVERS {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        for i in 0..SERVERS {
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("v{i}"), 2 + i as u32, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        }
        if faulted {
            sim.set_fault_plan(
                FaultPlan::new(21)
                    .with_dropout(
                        DropoutFault::random(0.02, Seconds::new(2.0), Seconds::new(6.0)).unwrap(),
                    )
                    .with_spike(
                        SpikeFault::random(0.05, Celsius::new(4.0), Celsius::new(9.0)).unwrap(),
                    )
                    .with_jitter(JitterFault::random(0.1, Seconds::new(1.5)).unwrap()),
            )
            .unwrap();
        }
        // A mid-run burst exercises event-driven re-anchoring.
        sim.schedule(
            SimTime::from_secs(90),
            Event::BootVm {
                server: ServerId::new(1),
                spec: VmSpec::new("burst", 4, 8.0, TaskProfile::CpuBound),
            },
        );
        sim
    }

    /// Everything observable about a monitor's end state, as exact bits.
    fn fingerprint(mse: f64, monitors: &[&dyn Fn(ServerId) -> (u64, u64, u64, u64)]) -> Vec<u64> {
        let mut bits = vec![mse.to_bits()];
        for probe in monitors {
            for i in 0..SERVERS {
                let (a, b, c, d) = probe(ServerId::new(i));
                bits.extend([a, b, c, d]);
            }
        }
        bits
    }

    fn run_and_compare(faulted: bool, shards: usize, threads: usize) {
        let stable = stable_model();
        let mut sim_a = fleet_sim(faulted);
        let mut sim_b = fleet_sim(faulted);
        let mut reference = FleetMonitor::new(
            stable.clone(),
            DynamicConfig::new(),
            SERVERS,
            Seconds::new(40.0),
        )
        .unwrap();
        let mut sharded = ShardedMonitor::new(
            &stable,
            DynamicConfig::new(),
            SERVERS,
            Seconds::new(40.0),
            shards,
            threads,
        )
        .unwrap();
        for _ in 0..200 {
            sim_a.step();
            sim_b.step();
            reference.observe(&sim_a, Celsius::new(24.0));
            sharded.observe(&sim_b, Celsius::new(24.0));
        }

        let probe_ref = |sid: ServerId| {
            let s = reference.stats(sid);
            (
                s.scored as u64,
                s.sum_sq_err.to_bits(),
                reference.rolling_mse(sid).to_bits(),
                reference.reanchor_count(sid),
            )
        };
        let probe_sharded = |sid: ServerId| {
            let s = sharded.stats(sid);
            (
                s.scored as u64,
                s.sum_sq_err.to_bits(),
                sharded.rolling_mse(sid).to_bits(),
                sharded.reanchor_count(sid),
            )
        };
        assert_eq!(
            fingerprint(reference.fleet_mse(), &[&probe_ref]),
            fingerprint(sharded.fleet_mse(), &[&probe_sharded]),
            "shards={shards} threads={threads} faulted={faulted}"
        );
        // Forecasts, holdover flags and anchors line up server by server.
        for i in 0..SERVERS {
            let sid = ServerId::new(i);
            assert_eq!(reference.latest_forecast(sid), sharded.latest_forecast(sid));
            assert_eq!(
                reference.pending_forecasts(sid),
                sharded.pending_forecasts(sid)
            );
            assert_eq!(reference.in_holdover(sid), sharded.in_holdover(sid));
            assert_eq!(
                reference.last_anchor_secs(sid).to_bits(),
                sharded.last_anchor_secs(sid).to_bits()
            );
            assert_eq!(reference.degradation(sid), sharded.degradation(sid));
        }
        // The fleet roll-up folds to the same bits as the unsharded fold.
        let (a, b) = (reference.fleet_pred_err(), sharded.fleet_pred_err());
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum().to_bits(), b.sum().to_bits());
        assert_eq!(a.min().to_bits(), b.min().to_bits());
        assert_eq!(a.max().to_bits(), b.max().to_bits());
        for (qa, qb) in a.quantiles().iter().zip(b.quantiles()) {
            assert_eq!(qa.0.to_bits(), qb.0.to_bits());
            assert_eq!(qa.1.to_bits(), qb.1.to_bits());
        }
    }

    #[test]
    fn sharded_monitor_matches_unsharded_bitwise() {
        run_and_compare(false, 2, 2);
    }

    #[test]
    fn sharded_monitor_matches_unsharded_bitwise_with_faults() {
        run_and_compare(true, 3, 4);
    }

    #[test]
    fn single_shard_single_thread_matches_too() {
        run_and_compare(true, 1, 1);
    }

    #[test]
    fn more_shards_than_servers_collapse() {
        let stable = stable_model();
        let sharded =
            ShardedMonitor::new(&stable, DynamicConfig::new(), 3, Seconds::new(40.0), 64, 8)
                .unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.servers(), 3);
        assert_eq!(sharded.threads(), 8);
    }

    #[test]
    fn accessors_are_safe_for_unknown_servers() {
        let stable = stable_model();
        let sharded =
            ShardedMonitor::new(&stable, DynamicConfig::new(), 2, Seconds::new(40.0), 2, 2)
                .unwrap();
        let ghost = ServerId::new(99);
        assert_eq!(sharded.stats(ghost), ServerStats::default());
        assert!(sharded.rolling_mse(ghost).is_nan());
        assert_eq!(sharded.reanchor_count(ghost), 0);
        assert_eq!(sharded.latest_forecast(ghost), None);
        assert!(!sharded.in_holdover(ghost));
        assert!(sharded.pred_err_sketch(ghost).is_none());
    }
}
