//! Baseline predictors the paper compares against (explicitly or
//! implicitly).
//!
//! - [`RcModelPredictor`] — the Resistor-Capacitor thermal model of
//!   Zhang et al. \[5\]: physically well-founded, but its steady-state
//!   estimate assumes *homogeneous* per-VM power, which multi-tenant
//!   heterogeneity breaks.
//! - [`TaskProfilePredictor`] — the task-temperature profile approach of
//!   Wang et al. \[4\]: a lookup from (task type, instance count) to stable
//!   temperature, built from single-task profiling runs; undefined for
//!   mixed tenancy, so it falls back to the dominant task.
//! - [`LastValuePredictor`] / [`MovingAveragePredictor`] — naive persistence
//!   baselines that bound how much of the paper's accuracy is "temperature
//!   changes slowly".
//! - [`LinearStablePredictor`] — ridge-regularised ordinary least squares on
//!   the same Eq. (2) features, isolating how much the SVR's
//!   non-linearity buys.

use crate::error::PredictError;
use crate::features::FeatureEncoding;
use crate::predictor::OnlinePredictor;
use std::collections::{BTreeMap, VecDeque};
use vmtherm_sim::experiment::{ConfigSnapshot, ExperimentOutcome};
use vmtherm_sim::workload::TaskProfile;
use vmtherm_units::{Celsius, Seconds, Watts};

/// Predicts that the temperature never changes: ψ(t + Δ) = φ(t).
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    last: Option<f64>,
}

impl LastValuePredictor {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl OnlinePredictor for LastValuePredictor {
    fn observe(&mut self, _t_secs: Seconds, measured_c: Celsius) {
        self.last = Some(measured_c.get());
    }

    fn predict_ahead(&self, _t_secs: Seconds, _gap_secs: Seconds) -> f64 {
        self.last.unwrap_or(f64::NAN)
    }

    fn name(&self) -> &str {
        "last-value"
    }
}

/// Predicts the mean of the last `window` measurements.
#[derive(Debug, Clone)]
pub struct MovingAveragePredictor {
    window: usize,
    buffer: VecDeque<f64>,
}

impl MovingAveragePredictor {
    /// Creates a predictor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "moving average needs a positive window");
        MovingAveragePredictor {
            window,
            buffer: VecDeque::with_capacity(window),
        }
    }
}

impl OnlinePredictor for MovingAveragePredictor {
    fn observe(&mut self, _t_secs: Seconds, measured_c: Celsius) {
        if self.buffer.len() == self.window {
            self.buffer.pop_front();
        }
        self.buffer.push_back(measured_c.get());
    }

    fn predict_ahead(&self, _t_secs: Seconds, _gap_secs: Seconds) -> f64 {
        if self.buffer.is_empty() {
            f64::NAN
        } else {
            self.buffer.iter().sum::<f64>() / self.buffer.len() as f64
        }
    }

    fn name(&self) -> &str {
        "moving-average"
    }
}

/// The RC thermal model baseline \[5\].
///
/// It knows the true exponential dynamics (`T(t+Δ) = T∞ + (T(t) − T∞)·e^{−Δ/τ}`)
/// but estimates the steady state `T∞` under the traditional homogeneity
/// assumption: every VM draws the same power, so
/// `T∞ = ambient + (P_base + n_vms · P_per_vm) · R`.
#[derive(Debug, Clone)]
pub struct RcModelPredictor {
    /// System time constant τ (s).
    tau_secs: f64,
    /// Total thermal resistance (K/W) assumed.
    r_total: f64,
    /// Baseline (idle) power (W) assumed.
    p_base: f64,
    /// Per-VM power (W) assumed — the homogeneity simplification.
    p_per_vm: f64,
    ambient_c: f64,
    vm_count: usize,
    last: Option<f64>,
}

impl RcModelPredictor {
    /// Creates the baseline with assumed plant constants.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `tau_secs` or `r_total`.
    #[must_use]
    pub fn new(
        tau_secs: Seconds,
        r_total: f64,
        p_base: Watts,
        p_per_vm: Watts,
        ambient_c: Celsius,
    ) -> Self {
        assert!(tau_secs.get() > 0.0, "tau must be positive");
        assert!(r_total > 0.0, "thermal resistance must be positive");
        RcModelPredictor {
            tau_secs: tau_secs.get(),
            r_total,
            p_base: p_base.get(),
            p_per_vm: p_per_vm.get(),
            ambient_c: ambient_c.get(),
            vm_count: 0,
            last: None,
        }
    }

    /// Plausible constants for the standard simulated server: τ ≈ 130 s,
    /// R ≈ 0.15 K/W, 76 W idle, 15 W per VM (calibrated on homogeneous
    /// medium VMs — which is exactly why it misfires on heterogeneous
    /// tenancy).
    #[must_use]
    pub fn standard(ambient_c: Celsius) -> Self {
        RcModelPredictor::new(
            Seconds::new(130.0),
            0.15,
            Watts::new(76.0),
            Watts::new(15.0),
            ambient_c,
        )
    }

    /// Updates the VM count (its only view of ξ_VM).
    pub fn set_vm_count(&mut self, vm_count: usize) {
        self.vm_count = vm_count;
    }

    /// The homogeneous steady-state estimate.
    #[must_use]
    pub fn steady_state_estimate(&self) -> f64 {
        self.ambient_c + (self.p_base + self.vm_count as f64 * self.p_per_vm) * self.r_total
    }
}

impl OnlinePredictor for RcModelPredictor {
    fn observe(&mut self, _t_secs: Seconds, measured_c: Celsius) {
        self.last = Some(measured_c.get());
    }

    fn predict_ahead(&self, _t_secs: Seconds, gap_secs: Seconds) -> f64 {
        let Some(current) = self.last else {
            return f64::NAN;
        };
        let t_inf = self.steady_state_estimate();
        t_inf + (current - t_inf) * (-gap_secs.get() / self.tau_secs).exp()
    }

    fn name(&self) -> &str {
        "rc-model"
    }
}

/// The task-temperature profile baseline \[4\]: a per-task lookup table of
/// stable temperatures, indexed by instance count, built from homogeneous
/// profiling runs.
#[derive(Debug, Clone, Default)]
pub struct TaskProfilePredictor {
    /// `(task, vm_count) → stable temperature` from profiling runs.
    /// Ordered so the nearest-count fallback (and anything else derived
    /// from iteration) is deterministic: among equidistant profiled
    /// counts the smaller `(task, count)` key wins, every run.
    table: BTreeMap<(TaskProfile, usize), f64>,
    current_prediction: Option<f64>,
}

impl TaskProfilePredictor {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one profiling measurement: `count` instances of `task` ran at
    /// `stable_c` stable temperature.
    pub fn add_profile(&mut self, task: TaskProfile, count: usize, stable_c: Celsius) {
        self.table.insert((task, count), stable_c.get());
    }

    /// Builds a table from *homogeneous* experiment outcomes, skipping any
    /// mixed-tenancy record (the method has no way to use them — its core
    /// limitation).
    #[must_use]
    pub fn fit_from_outcomes(outcomes: &[ExperimentOutcome]) -> Self {
        let mut p = TaskProfilePredictor::new();
        for o in outcomes {
            let Some(first) = o.snapshot.vms.first() else {
                continue;
            };
            if o.snapshot.vms.iter().all(|v| v.task == first.task) {
                p.add_profile(first.task, o.snapshot.vms.len(), Celsius::new(o.psi_stable));
            }
        }
        p
    }

    /// Number of table entries.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Looks up (or approximates) the stable temperature for a (possibly
    /// heterogeneous) configuration: the table entry for the **dominant
    /// task** (largest vCPU share) at the total VM count, falling back to
    /// the nearest profiled count.
    ///
    /// # Errors
    ///
    /// [`PredictError::NotReady`] when the table has no entry for the
    /// dominant task at all.
    pub fn predict_stable(&self, snapshot: &ConfigSnapshot) -> Result<f64, PredictError> {
        let Some(dominant) = dominant_task(snapshot) else {
            return Err(PredictError::NotReady("no VMs in snapshot"));
        };
        let n = snapshot.vms.len();
        if let Some(v) = self.table.get(&(dominant, n)) {
            return Ok(*v);
        }
        // Nearest profiled count for that task.
        self.table
            .iter()
            .filter(|((task, _), _)| *task == dominant)
            .min_by_key(|((_, count), _)| count.abs_diff(n))
            .map(|(_, v)| *v)
            .ok_or(PredictError::NotReady("task not profiled"))
    }

    /// Fixes the active configuration so the online interface can answer.
    pub fn set_snapshot(&mut self, snapshot: &ConfigSnapshot) {
        self.current_prediction = self.predict_stable(snapshot).ok();
    }
}

/// The task with the largest vCPU share in a snapshot. Accumulation is
/// keyed through an ordered map so the fold order — and the winner under
/// any comparator — never depends on hash seeding.
#[must_use]
pub fn dominant_task(snapshot: &ConfigSnapshot) -> Option<TaskProfile> {
    let mut share: BTreeMap<TaskProfile, u32> = BTreeMap::new();
    for vm in &snapshot.vms {
        *share.entry(vm.task).or_insert(0) += vm.vcpus;
    }
    share
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(a.0.index().cmp(&b.0.index()).reverse()))
        .map(|(task, _)| task)
}

impl OnlinePredictor for TaskProfilePredictor {
    fn observe(&mut self, _t_secs: Seconds, _measured_c: Celsius) {}

    fn predict_ahead(&self, _t_secs: Seconds, _gap_secs: Seconds) -> f64 {
        self.current_prediction.unwrap_or(f64::NAN)
    }

    fn name(&self) -> &str {
        "task-profile"
    }
}

/// Ridge-regularised least squares on Eq. (2) features → ψ_stable.
#[derive(Debug, Clone)]
pub struct LinearStablePredictor {
    encoding: FeatureEncoding,
    /// Weights, last entry is the intercept.
    weights: Vec<f64>,
}

impl LinearStablePredictor {
    /// Fits by solving the ridge normal equations `(XᵀX + αI)w = Xᵀy`.
    ///
    /// # Errors
    ///
    /// [`PredictError::NoTrainingData`] for an empty record set.
    pub fn fit(
        outcomes: &[ExperimentOutcome],
        encoding: FeatureEncoding,
        ridge: f64,
    ) -> Result<Self, PredictError> {
        if outcomes.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let d = encoding.dim() + 1; // + intercept
                                    // XᵀX accumulated flat, row-major — same layout as the feature
                                    // pipeline's DenseMatrix.
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        for o in outcomes {
            let mut x = encoding.encode(&o.snapshot);
            x.push(1.0);
            for i in 0..d {
                xty[i] += x[i] * o.psi_stable;
                for j in 0..d {
                    xtx[i * d + j] += x[i] * x[j];
                }
            }
        }
        for i in 0..d {
            xtx[i * d + i] += ridge;
        }
        let weights = solve_linear(xtx, d, xty)
            .ok_or_else(|| PredictError::invalid("ridge", "singular normal equations"))?;
        Ok(LinearStablePredictor { encoding, weights })
    }

    /// Predicts ψ_stable for a configuration.
    #[must_use]
    pub fn predict(&self, snapshot: &ConfigSnapshot) -> f64 {
        let x = self.encoding.encode(snapshot);
        let mut acc = *self.weights.last().expect("intercept");
        for (w, v) in self.weights.iter().zip(&x) {
            acc += w * v;
        }
        acc
    }
}

/// Gaussian elimination with partial pivoting over a flat row-major
/// `n × n` matrix. Returns `None` for a (numerically) singular system.
fn solve_linear(mut a: Vec<f64>, n: usize, mut b: Vec<f64>) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n, "matrix is not n×n");
    debug_assert_eq!(b.len(), n, "rhs length != n");
    for col in 0..n {
        // Pivot.
        let pivot =
            (col..n).max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))?;
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row * n + col] / a[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmtherm_sim::experiment::VmInfo;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    fn snapshot(tasks: &[(TaskProfile, u32)]) -> ConfigSnapshot {
        ConfigSnapshot {
            theta_cpu: 38.4,
            theta_memory_gb: 64.0,
            fan_count: 4,
            fan_airflow_cfm: 144.0,
            vms: tasks
                .iter()
                .map(|(task, vcpus)| VmInfo {
                    vcpus: *vcpus,
                    memory_gb: 4.0,
                    task: *task,
                })
                .collect(),
            ambient_c: 25.0,
        }
    }

    #[test]
    fn last_value_predicts_last() {
        let mut p = LastValuePredictor::new();
        assert!(p.predict_ahead(s(0.0), s(60.0)).is_nan());
        p.observe(s(0.0), c(41.0));
        p.observe(s(1.0), c(43.0));
        assert_eq!(p.predict_ahead(s(1.0), s(60.0)), 43.0);
    }

    #[test]
    fn moving_average_windows() {
        let mut p = MovingAveragePredictor::new(3);
        for (t, v) in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)] {
            p.observe(s(t), c(v));
        }
        // window holds 2,3,4.
        assert_eq!(p.predict_ahead(s(3.0), s(10.0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn zero_window_panics() {
        let _ = MovingAveragePredictor::new(0);
    }

    #[test]
    fn rc_model_relaxes_exponentially() {
        let mut p =
            RcModelPredictor::new(s(100.0), 0.1, Watts::new(50.0), Watts::new(10.0), c(25.0));
        p.set_vm_count(5);
        // T∞ = 25 + (50 + 50)*0.1 = 35.
        assert_eq!(p.steady_state_estimate(), 35.0);
        p.observe(s(0.0), c(55.0));
        let after_tau = p.predict_ahead(s(0.0), s(100.0));
        // 35 + 20/e ≈ 42.36.
        assert!((after_tau - (35.0 + 20.0 / std::f64::consts::E)).abs() < 1e-9);
        // Long horizon → steady state.
        assert!((p.predict_ahead(s(0.0), s(1e6)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn rc_model_blind_to_heterogeneity() {
        // Same VM count, wildly different tasks → identical RC estimate.
        let mut p = RcModelPredictor::standard(c(25.0));
        p.set_vm_count(4);
        let est_idle = p.steady_state_estimate();
        p.set_vm_count(4);
        let est_hot = p.steady_state_estimate();
        assert_eq!(est_idle, est_hot);
    }

    #[test]
    fn dominant_task_by_vcpu_share() {
        let s = snapshot(&[
            (TaskProfile::Idle, 1),
            (TaskProfile::CpuBound, 4),
            (TaskProfile::Idle, 2),
        ]);
        assert_eq!(dominant_task(&s), Some(TaskProfile::CpuBound));
        let empty = snapshot(&[]);
        assert_eq!(dominant_task(&empty), None);
    }

    #[test]
    fn task_profile_lookup_and_fallback() {
        let mut p = TaskProfilePredictor::new();
        p.add_profile(TaskProfile::CpuBound, 4, c(60.0));
        p.add_profile(TaskProfile::CpuBound, 8, c(68.0));
        let s4 = snapshot(&[(TaskProfile::CpuBound, 2); 4]);
        assert_eq!(p.predict_stable(&s4).unwrap(), 60.0);
        // Unprofiled count 5 → nearest (4).
        let s5 = snapshot(&[(TaskProfile::CpuBound, 2); 5]);
        assert_eq!(p.predict_stable(&s5).unwrap(), 60.0);
        // Unprofiled task → error.
        let sweb = snapshot(&[(TaskProfile::WebServer, 2); 3]);
        assert!(p.predict_stable(&sweb).is_err());
    }

    #[test]
    fn task_profile_fit_skips_mixed_records() {
        let homo = ExperimentOutcome {
            snapshot: snapshot(&[(TaskProfile::Mixed, 2); 3]),
            psi_stable: 50.0,
            true_stable: 50.0,
            initial_temp: 25.0,
            sensor_series: Default::default(),
            die_series: Default::default(),
        };
        let mixed = ExperimentOutcome {
            snapshot: snapshot(&[(TaskProfile::Mixed, 2), (TaskProfile::Idle, 1)]),
            psi_stable: 44.0,
            true_stable: 44.0,
            initial_temp: 25.0,
            sensor_series: Default::default(),
            die_series: Default::default(),
        };
        let p = TaskProfilePredictor::fit_from_outcomes(&[homo, mixed]);
        assert_eq!(p.table_len(), 1);
    }

    #[test]
    fn task_profile_online_interface() {
        let mut p = TaskProfilePredictor::new();
        p.add_profile(TaskProfile::CpuBound, 2, c(58.0));
        assert!(p.predict_ahead(s(0.0), s(60.0)).is_nan());
        p.set_snapshot(&snapshot(&[(TaskProfile::CpuBound, 2); 2]));
        assert_eq!(p.predict_ahead(s(0.0), s(60.0)), 58.0);
    }

    #[test]
    fn solve_linear_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_linear(a, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let a = vec![1.0, 1.0, 1.0, 1.0];
        assert!(solve_linear(a, 2, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_linear_with_pivoting() {
        // Leading zero forces a row swap: 0x + y = 1, 2x + y = 3 → x=1, y=1.
        let a = vec![0.0, 1.0, 2.0, 1.0];
        let x = solve_linear(a, 2, vec![1.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_linear_relationship() {
        // Synthetic outcomes whose ψ_stable is a linear function of the
        // encoded features must be fitted (near-)exactly.
        let mut outcomes = Vec::new();
        for n in 1..10 {
            let s = snapshot(&vec![(TaskProfile::CpuBound, 2); n]);
            let x = FeatureEncoding::Full.encode(&s);
            let target = 20.0 + 0.5 * x[5] + 0.25 * x[6];
            outcomes.push(ExperimentOutcome {
                snapshot: s,
                psi_stable: target,
                true_stable: target,
                initial_temp: 25.0,
                sensor_series: Default::default(),
                die_series: Default::default(),
            });
        }
        let model = LinearStablePredictor::fit(&outcomes, FeatureEncoding::Full, 1e-6).unwrap();
        for o in &outcomes {
            assert!((model.predict(&o.snapshot) - o.psi_stable).abs() < 1e-3);
        }
    }

    #[test]
    fn linear_fit_rejects_empty() {
        assert!(matches!(
            LinearStablePredictor::fit(&[], FeatureEncoding::Full, 1.0),
            Err(PredictError::NoTrainingData)
        ));
    }
}
