//! Stable CPU temperature prediction — the paper's first contribution.
//!
//! The pipeline is exactly §II of the paper:
//!
//! 1. run experiments, each yielding one Eq. (2) record
//!    `(θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env) → ψ_stable`;
//! 2. scale features (`svm-scale`);
//! 3. grid-search SVR hyper-parameters with 10-fold cross-validation
//!    (`easygrid`), RBF kernel;
//! 4. train the final model on all records;
//! 5. deploy: encode a live configuration snapshot and predict ψ_stable.

use crate::error::PredictError;
use crate::features::FeatureEncoding;
use serde::{Deserialize, Serialize};
use vmtherm_sim::experiment::{ConfigSnapshot, ExperimentConfig, ExperimentOutcome};
use vmtherm_svm::data::Dataset;
use vmtherm_svm::grid::{GridSearch, Log2Range};
use vmtherm_svm::kernel::Kernel;
use vmtherm_svm::matrix::DenseMatrix;
use vmtherm_svm::scale::{ScaleMethod, Scaler};
use vmtherm_svm::svr::{SvrModel, SvrParams};

/// How the stable model is trained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingOptions {
    /// Feature encoding for ξ_VM et al.
    pub encoding: FeatureEncoding,
    /// Fixed parameters; when `None`, grid search selects them.
    pub params: Option<SvrParams>,
    /// Cross-validation folds for grid search (paper: 10).
    pub folds: usize,
    /// Fold-shuffle seed.
    pub seed: u64,
}

impl TrainingOptions {
    /// Paper defaults: full encoding, grid-searched RBF, 10 folds.
    #[must_use]
    pub fn new() -> Self {
        TrainingOptions {
            encoding: FeatureEncoding::Full,
            params: None,
            folds: 10,
            seed: 0xA11CE,
        }
    }

    /// Uses fixed parameters instead of grid search (fast tests, ablations).
    #[must_use]
    pub fn with_params(mut self, params: SvrParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides the encoding.
    #[must_use]
    pub fn with_encoding(mut self, encoding: FeatureEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Overrides the CV fold count.
    #[must_use]
    pub fn with_folds(mut self, folds: usize) -> Self {
        self.folds = folds;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TrainingOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds an Eq. (2) dataset from experiment outcomes.
#[must_use]
pub fn dataset_from_outcomes(outcomes: &[ExperimentOutcome], encoding: FeatureEncoding) -> Dataset {
    let mut ds = Dataset::new(encoding.dim());
    for o in outcomes {
        ds.push(encoding.encode(&o.snapshot), o.psi_stable);
    }
    ds
}

/// Runs every experiment config and collects outcomes (the paper's
/// data-collection campaign).
#[must_use]
pub fn run_experiments(configs: &[ExperimentConfig]) -> Vec<ExperimentOutcome> {
    configs.iter().map(ExperimentConfig::run).collect()
}

/// Runs the campaign on up to `threads` worker threads.
///
/// Each experiment is a self-contained seeded simulation, and outcomes
/// land in index-addressed slots ([`vmtherm_sim::shard::for_each_chunk`]),
/// so the returned vector is bit-identical to [`run_experiments`] for
/// every thread count.
#[must_use]
pub fn run_experiments_threaded(
    configs: &[ExperimentConfig],
    threads: usize,
) -> Vec<ExperimentOutcome> {
    if threads <= 1 {
        return run_experiments(configs);
    }
    let mut slots: Vec<(&ExperimentConfig, Option<ExperimentOutcome>)> =
        configs.iter().map(|c| (c, None)).collect();
    vmtherm_sim::shard::for_each_chunk(&mut slots, threads, threads, |_, chunk| {
        for (config, slot) in chunk {
            *slot = Some(config.run());
        }
    });
    // Every slot is filled: the chunks cover the slice exactly once.
    slots.into_iter().flat_map(|(_, outcome)| outcome).collect()
}

/// The deployed stable-temperature model: scaler + SVR + encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StablePredictor {
    encoding: FeatureEncoding,
    scaler: Scaler,
    model: SvrModel,
    params: SvrParams,
    cv_mse: Option<f64>,
}

impl StablePredictor {
    /// Trains from experiment outcomes.
    ///
    /// # Errors
    ///
    /// [`PredictError::NoTrainingData`] for an empty record set;
    /// SVM errors from grid search or final training.
    pub fn fit(
        outcomes: &[ExperimentOutcome],
        options: &TrainingOptions,
    ) -> Result<Self, PredictError> {
        if outcomes.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let raw = dataset_from_outcomes(outcomes, options.encoding);
        Self::fit_dataset(raw, options)
    }

    /// Trains from an already-encoded dataset (features must match
    /// `options.encoding`).
    ///
    /// # Errors
    ///
    /// As [`StablePredictor::fit`].
    pub fn fit_dataset(raw: Dataset, options: &TrainingOptions) -> Result<Self, PredictError> {
        let _span = vmtherm_obs::span(vmtherm_obs::names::SPAN_STABLE_TRAIN);
        if raw.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let scaler = Scaler::fit(&raw, ScaleMethod::MinMax);
        let scaled = scaler.transform_dataset(&raw);

        let (params, cv_mse) = match options.params {
            Some(p) => (p, None),
            None => {
                let grid = GridSearch::new()
                    .with_c_values(Log2Range::new(-1, 11, 2).values())
                    .with_gamma_values(Log2Range::new(-9, 1, 2).values())
                    .with_epsilon_values(vec![0.05, 0.1, 0.2])
                    .with_base_params(SvrParams::new().with_kernel(Kernel::rbf(1.0)))
                    .with_folds(options.folds)
                    .with_seed(options.seed);
                let result = grid.run(&scaled)?;
                (result.best_params(), Some(result.best_mse()))
            }
        };
        let model = SvrModel::train(&scaled, params)?;
        Ok(StablePredictor {
            encoding: options.encoding,
            scaler,
            model,
            params,
            cv_mse,
        })
    }

    /// Predicts ψ_stable for a configuration.
    #[must_use]
    pub fn predict(&self, snapshot: &ConfigSnapshot) -> f64 {
        let x = self.encoding.encode(snapshot);
        self.model
            .predict(&self.scaler.transform(&x))
            .expect("encoder/scaler/model dims agree by construction")
    }

    /// Predicts ψ_stable for a whole batch of configurations through the
    /// flat-matrix pipeline: all snapshots are encoded into one
    /// [`DenseMatrix`], scaled in place, and pushed through the SVR's
    /// batch path. Bit-identical to mapping [`StablePredictor::predict`]
    /// over the slice.
    #[must_use]
    pub fn predict_batch(&self, snapshots: &[ConfigSnapshot]) -> Vec<f64> {
        let mut features = DenseMatrix::with_cols(self.encoding.dim());
        for snapshot in snapshots {
            features.push_row(&self.encoding.encode(snapshot));
        }
        self.model
            .predict_batch(&self.scaler.transform_matrix(&features))
            .expect("encoder/scaler/model dims agree by construction")
    }

    /// Predicts from a raw (unscaled) feature vector in this predictor's
    /// encoding.
    ///
    /// # Errors
    ///
    /// [`PredictError::Svm`] wrapping a dimension mismatch when the vector
    /// length does not match the encoding.
    pub fn predict_features(&self, raw_features: &[f64]) -> Result<f64, PredictError> {
        if raw_features.len() != self.encoding.dim() {
            return Err(PredictError::Svm(
                vmtherm_svm::SvmError::DimensionMismatch {
                    expected: self.encoding.dim(),
                    actual: raw_features.len(),
                },
            ));
        }
        Ok(self.model.predict(&self.scaler.transform(raw_features))?)
    }

    /// Predicts every row of a raw (unscaled) feature matrix in this
    /// predictor's encoding — the batch counterpart of
    /// [`StablePredictor::predict_features`], bit-identical to mapping it
    /// per row.
    ///
    /// # Errors
    ///
    /// [`PredictError::Svm`] wrapping a dimension mismatch when the matrix
    /// width does not match the encoding.
    pub fn predict_features_batch(
        &self,
        raw_features: &DenseMatrix,
    ) -> Result<Vec<f64>, PredictError> {
        if raw_features.cols() != self.encoding.dim() {
            return Err(PredictError::Svm(
                vmtherm_svm::SvmError::DimensionMismatch {
                    expected: self.encoding.dim(),
                    actual: raw_features.cols(),
                },
            ));
        }
        Ok(self
            .model
            .predict_batch(&self.scaler.transform_matrix(raw_features))?)
    }

    /// The encoding used at training time.
    #[must_use]
    pub fn encoding(&self) -> FeatureEncoding {
        self.encoding
    }

    /// The hyper-parameters used for the final model.
    #[must_use]
    pub fn params(&self) -> SvrParams {
        self.params
    }

    /// Grid-search cross-validation MSE, when grid search ran.
    #[must_use]
    pub fn cv_mse(&self) -> Option<f64> {
        self.cv_mse
    }

    /// Number of support vectors in the deployed model.
    #[must_use]
    pub fn num_support_vectors(&self) -> usize {
        self.model.num_support_vectors()
    }

    /// Serialises the whole deployed pipeline (encoding + scaler + SVR)
    /// into a self-describing text container, so a model trained offline
    /// can be shipped to the online predictor — the paper's
    /// "trained … and deployed in real environment" step.
    #[must_use]
    pub fn save_to_string(&self) -> String {
        let encoding_tag = match self.encoding {
            FeatureEncoding::Full => "full",
            FeatureEncoding::CountOnly => "count-only",
            FeatureEncoding::NoEnvironment => "no-environment",
        };
        format!(
            "vmtherm-pipeline v1\nencoding={encoding_tag}\n{}{}",
            vmtherm_svm::model_io::scaler_to_string(&self.scaler),
            vmtherm_svm::model_io::svr_to_string(&self.model),
        )
    }

    /// Restores a pipeline saved by [`StablePredictor::save_to_string`].
    ///
    /// # Errors
    ///
    /// [`PredictError::Svm`] wrapping a parse error for malformed content.
    pub fn load_from_string(text: &str) -> Result<Self, PredictError> {
        let mut lines = text.splitn(3, '\n');
        let header = lines.next().unwrap_or_default();
        if header.trim() != "vmtherm-pipeline v1" {
            return Err(PredictError::Svm(vmtherm_svm::SvmError::Parse {
                line: 1,
                message: format!("bad pipeline header `{header}`"),
            }));
        }
        let enc_line = lines.next().unwrap_or_default();
        let encoding = match enc_line.trim().strip_prefix("encoding=") {
            Some("full") => FeatureEncoding::Full,
            Some("count-only") => FeatureEncoding::CountOnly,
            Some("no-environment") => FeatureEncoding::NoEnvironment,
            _ => {
                return Err(PredictError::Svm(vmtherm_svm::SvmError::Parse {
                    line: 2,
                    message: format!("bad encoding line `{enc_line}`"),
                }))
            }
        };
        let rest = lines.next().unwrap_or_default();
        // The scaler block ends where the SVR block's header begins.
        let svr_start = rest.find("vmtherm-model svr v1").ok_or_else(|| {
            PredictError::Svm(vmtherm_svm::SvmError::Parse {
                line: 3,
                message: "missing svr block".to_string(),
            })
        })?;
        let scaler = vmtherm_svm::model_io::scaler_from_string(&rest[..svr_start])?;
        let model = vmtherm_svm::model_io::svr_from_string(&rest[svr_start..])?;
        let params = SvrParams::new().with_kernel(model.kernel());
        Ok(StablePredictor {
            encoding,
            scaler,
            model,
            params,
            cv_mse: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmtherm_sim::server::ServerSpec;
    use vmtherm_sim::vm::VmSpec;
    use vmtherm_sim::workload::TaskProfile;
    use vmtherm_sim::CaseGenerator;
    use vmtherm_sim::SimDuration;
    use vmtherm_units::Celsius;

    /// Small, fast experiment set: short runs, fixed params (no grid).
    fn outcomes(n: usize) -> Vec<ExperimentOutcome> {
        let mut gen = CaseGenerator::new(42);
        let configs: Vec<ExperimentConfig> = gen
            .random_cases(n, 1000)
            .into_iter()
            .map(|c| {
                c.with_duration(SimDuration::from_secs(800))
                    .with_t_break(SimDuration::from_secs(550))
            })
            .collect();
        run_experiments(&configs)
    }

    fn fast_options() -> TrainingOptions {
        TrainingOptions::new().with_params(
            SvrParams::new()
                .with_c(64.0)
                .with_epsilon(0.1)
                .with_kernel(Kernel::rbf(0.02)),
        )
    }

    #[test]
    fn fits_and_predicts_training_cases_well() {
        let data = outcomes(30);
        let p = StablePredictor::fit(&data, &fast_options()).unwrap();
        let preds: Vec<f64> = data.iter().map(|o| p.predict(&o.snapshot)).collect();
        let actual: Vec<f64> = data.iter().map(|o| o.psi_stable).collect();
        let mse = vmtherm_svm::metrics::mse(&actual, &preds);
        assert!(mse < 2.0, "training mse = {mse}");
    }

    #[test]
    fn generalises_to_held_out_cases() {
        let train = outcomes(60);
        let p = StablePredictor::fit(&train, &fast_options()).unwrap();
        // Different generator seed → unseen cases.
        let mut gen = CaseGenerator::new(777);
        let test_configs: Vec<ExperimentConfig> = gen
            .random_cases(10, 9000)
            .into_iter()
            .map(|c| {
                c.with_duration(SimDuration::from_secs(800))
                    .with_t_break(SimDuration::from_secs(550))
            })
            .collect();
        let test = run_experiments(&test_configs);
        let preds: Vec<f64> = test.iter().map(|o| p.predict(&o.snapshot)).collect();
        let actual: Vec<f64> = test.iter().map(|o| o.psi_stable).collect();
        let mse = vmtherm_svm::metrics::mse(&actual, &preds);
        assert!(mse < 6.0, "held-out mse = {mse}");
    }

    #[test]
    fn empty_training_set_is_an_error() {
        assert!(matches!(
            StablePredictor::fit(&[], &fast_options()),
            Err(PredictError::NoTrainingData)
        ));
    }

    #[test]
    fn dataset_has_right_shape() {
        let data = outcomes(5);
        let ds = dataset_from_outcomes(&data, FeatureEncoding::Full);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dim(), FeatureEncoding::Full.dim());
        assert_eq!(ds.target(0), data[0].psi_stable);
    }

    #[test]
    fn predict_batch_matches_scalar_bitwise() {
        let data = outcomes(20);
        let p = StablePredictor::fit(&data, &fast_options()).unwrap();
        let snapshots: Vec<_> = data.iter().map(|o| o.snapshot.clone()).collect();
        let batch = p.predict_batch(&snapshots);
        assert_eq!(batch.len(), snapshots.len());
        for (s, got) in snapshots.iter().zip(&batch) {
            assert_eq!(p.predict(s).to_bits(), got.to_bits());
        }
    }

    #[test]
    fn predict_features_rejects_wrong_dim() {
        let data = outcomes(10);
        let p = StablePredictor::fit(&data, &fast_options()).unwrap();
        assert!(p.predict_features(&[1.0]).is_err());
    }

    #[test]
    fn predictor_is_deterministic() {
        let data = outcomes(20);
        let a = StablePredictor::fit(&data, &fast_options()).unwrap();
        let b = StablePredictor::fit(&data, &fast_options()).unwrap();
        let s = &data[3].snapshot;
        assert_eq!(a.predict(s), b.predict(s));
    }

    #[test]
    fn more_load_predicts_hotter() {
        let data = outcomes(60);
        let p = StablePredictor::fit(&data, &fast_options()).unwrap();
        let server = ServerSpec::commodity("probe", 16, 2.4, 64.0, 4);
        let light = ExperimentConfig::new(
            server.clone(),
            vec![VmSpec::new("idle", 1, 2.0, TaskProfile::Idle); 2],
            Celsius::new(24.0),
            5,
        );
        let heavy = ExperimentConfig::new(
            server,
            (0..8)
                .map(|i| VmSpec::new(format!("hog{i}"), 2, 4.0, TaskProfile::CpuBound))
                .collect(),
            Celsius::new(24.0),
            5,
        );
        // Build snapshots without running: capture via short runs.
        let light_snap = light
            .with_duration(SimDuration::from_secs(700))
            .run()
            .snapshot;
        let heavy_snap = heavy
            .with_duration(SimDuration::from_secs(700))
            .run()
            .snapshot;
        assert!(p.predict(&heavy_snap) > p.predict(&light_snap) + 3.0);
    }

    #[test]
    fn pipeline_save_load_round_trip() {
        let data = outcomes(20);
        let p = StablePredictor::fit(&data, &fast_options()).unwrap();
        let text = p.save_to_string();
        let back = StablePredictor::load_from_string(&text).unwrap();
        assert_eq!(back.encoding(), p.encoding());
        for o in &data {
            let a = p.predict(&o.snapshot);
            let b = back.predict(&o.snapshot);
            assert!((a - b).abs() < 1e-9, "prediction drift {a} vs {b}");
        }
    }

    #[test]
    fn pipeline_load_rejects_garbage() {
        assert!(StablePredictor::load_from_string("not a pipeline").is_err());
        assert!(
            StablePredictor::load_from_string("vmtherm-pipeline v1\nencoding=weird\nx").is_err()
        );
        assert!(
            StablePredictor::load_from_string("vmtherm-pipeline v1\nencoding=full\nno blocks")
                .is_err()
        );
    }

    #[test]
    fn grid_search_path_works_and_records_cv_mse() {
        let data = outcomes(25);
        let opts = TrainingOptions::new().with_folds(3).with_seed(1);
        let p = StablePredictor::fit(&data, &opts).unwrap();
        assert!(p.cv_mse().is_some());
        assert!(p.cv_mse().unwrap() < 10.0, "cv mse = {:?}", p.cv_mse());
        assert!(p.num_support_vectors() > 0);
    }
}
