//! The common interface for online temperature predictors.
//!
//! Every predictor — the paper's calibrated dynamic model and all the
//! baselines — consumes a stream of timestamped sensor measurements and
//! answers "what will the CPU temperature be Δ_gap seconds from now?".
//! The evaluation harness ([`crate::eval`]) drives them uniformly through
//! this trait.

use vmtherm_units::{Celsius, Seconds};

/// An online CPU-temperature predictor.
pub trait OnlinePredictor {
    /// Feeds one sensor measurement taken at `t_secs`.
    fn observe(&mut self, t_secs: Seconds, measured_c: Celsius);

    /// Predicts the temperature at `t_secs + gap_secs`, given everything
    /// observed so far.
    fn predict_ahead(&self, t_secs: Seconds, gap_secs: Seconds) -> f64;

    /// Short name for reports (e.g. `"calibrated"`, `"last-value"`).
    fn name(&self) -> &str;

    /// Notifies the predictor that the configuration changed at `t_secs`
    /// (VM boot/stop/migration, fan change). `current_temp_c` is the
    /// measurement at that instant. Predictors that cannot use this ignore
    /// it; the paper's dynamic model re-anchors its curve.
    fn on_reconfiguration(&mut self, t_secs: Seconds, current_temp_c: Celsius) {
        let _ = (t_secs, current_temp_c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    /// A trivial implementor to pin down the default method.
    struct Fixed(f64);

    impl OnlinePredictor for Fixed {
        fn observe(&mut self, _t: Seconds, _m: Celsius) {}
        fn predict_ahead(&self, _t: Seconds, _gap: Seconds) -> f64 {
            self.0
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn default_reconfiguration_is_a_noop() {
        let mut p = Fixed(50.0);
        p.on_reconfiguration(s(10.0), c(60.0));
        assert_eq!(p.predict_ahead(s(10.0), s(60.0)), 50.0);
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn trait_is_object_safe() {
        let mut p: Box<dyn OnlinePredictor> = Box::new(Fixed(1.0));
        p.observe(s(0.0), c(1.0));
        assert_eq!(p.predict_ahead(s(0.0), s(1.0)), 1.0);
    }
}
