//! The common interface for online temperature predictors.
//!
//! Every predictor — the paper's calibrated dynamic model and all the
//! baselines — consumes a stream of timestamped sensor measurements and
//! answers "what will the CPU temperature be Δ_gap seconds from now?".
//! The evaluation harness ([`crate::eval`]) drives them uniformly through
//! this trait.

/// An online CPU-temperature predictor.
pub trait OnlinePredictor {
    /// Feeds one sensor measurement taken at `t_secs`.
    fn observe(&mut self, t_secs: f64, measured_c: f64);

    /// Predicts the temperature at `t_secs + gap_secs`, given everything
    /// observed so far.
    fn predict_ahead(&self, t_secs: f64, gap_secs: f64) -> f64;

    /// Short name for reports (e.g. `"calibrated"`, `"last-value"`).
    fn name(&self) -> &str;

    /// Notifies the predictor that the configuration changed at `t_secs`
    /// (VM boot/stop/migration, fan change). `current_temp_c` is the
    /// measurement at that instant. Predictors that cannot use this ignore
    /// it; the paper's dynamic model re-anchors its curve.
    fn on_reconfiguration(&mut self, t_secs: f64, current_temp_c: f64) {
        let _ = (t_secs, current_temp_c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial implementor to pin down the default method.
    struct Fixed(f64);

    impl OnlinePredictor for Fixed {
        fn observe(&mut self, _t: f64, _m: f64) {}
        fn predict_ahead(&self, _t: f64, _gap: f64) -> f64 {
            self.0
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn default_reconfiguration_is_a_noop() {
        let mut p = Fixed(50.0);
        p.on_reconfiguration(10.0, 60.0);
        assert_eq!(p.predict_ahead(10.0, 60.0), 50.0);
        assert_eq!(p.name(), "fixed");
    }

    #[test]
    fn trait_is_object_safe() {
        let mut p: Box<dyn OnlinePredictor> = Box::new(Fixed(1.0));
        p.observe(0.0, 1.0);
        assert_eq!(p.predict_ahead(0.0, 1.0), 1.0);
    }
}
