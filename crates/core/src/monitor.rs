//! Fleet monitoring: the paper's deployment mode as a reusable component.
//!
//! "Then the model received data collected online and output prediction
//! values" — [`FleetMonitor`] wires one calibrated [`DynamicPredictor`]
//! per server to a running simulation: it consumes sensor samples, watches
//! the event log and **re-anchors automatically** on every reconfiguration
//! (VM boot/stop, migration start/completion) using fresh ψ_stable
//! predictions from the stable model, while scoring each forecast when its
//! target time arrives.

use crate::dynamic::{DynamicConfig, DynamicPredictor};
use crate::error::PredictError;
use crate::predictor::OnlinePredictor;
use crate::stable::StablePredictor;
use std::collections::VecDeque;
use vmtherm_obs::{self as obs, names, ObsEvent};
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_sim::{ServerId, SimEvent, SimTime, Simulation, TelemetryError, TimeSeries};
use vmtherm_units::{Celsius, Seconds};

static OBS_REANCHORS: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_REANCHOR_TOTAL);
static OBS_SAMPLES: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_SAMPLES_INGESTED);
static OBS_ISSUED: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_FORECASTS_ISSUED);
static OBS_SCORED: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_FORECASTS_SCORED);
static OBS_ABS_ERR: obs::LazyHistogram = obs::LazyHistogram::new(
    names::METRIC_FORECAST_ABS_ERR_C,
    obs::Histogram::celsius_buckets,
);
static OBS_OOO: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_MONITOR_OOO_ABSORBED);
static OBS_SPIKES_REJECTED: obs::LazyCounter =
    obs::LazyCounter::new(names::METRIC_MONITOR_SPIKES_REJECTED);
static OBS_STUCK_SUSPECTED: obs::LazyCounter =
    obs::LazyCounter::new(names::METRIC_MONITOR_STUCK_SUSPECTED);
static OBS_HOLDOVER_ENTRIES: obs::LazyCounter =
    obs::LazyCounter::new(names::METRIC_MONITOR_HOLDOVER_ENTRIES);
static OBS_RECOVERY_REANCHORS: obs::LazyCounter =
    obs::LazyCounter::new(names::METRIC_MONITOR_RECOVERY_REANCHORS);
static OBS_EXPIRED: obs::LazyCounter =
    obs::LazyCounter::new(names::METRIC_MONITOR_FORECASTS_EXPIRED);
static OBS_OBSERVE_NS: obs::LazySummary = obs::LazySummary::new(names::METRIC_MONITOR_OBSERVE_NS);

/// Forecast errors kept per server for the rolling-MSE drift gauge.
const ROLLING_WINDOW: usize = 128;

/// Default die-temperature limit (°C) the headroom gauge measures against;
/// a common throttle point for commodity server CPUs.
pub const DEFAULT_TEMP_LIMIT_C: f64 = 85.0;

/// Per-server drift gauges, registered against the global registry with a
/// `{server="N"}` label when the observability layer is enabled.
#[derive(Debug)]
struct ServerGauges {
    rolling_mse: obs::Gauge,
    gamma_abs: obs::Gauge,
    since_reanchor: obs::Gauge,
    pending: obs::Gauge,
    holdover: obs::Gauge,
    /// °C below the configured die-temperature limit at the latest sample.
    headroom: obs::Gauge,
    /// Absolute forecast-error summary (p50/p95/p99 via the P² sketch).
    pred_err: obs::Summary,
}

impl ServerGauges {
    fn register(server: usize) -> ServerGauges {
        let reg = obs::global();
        ServerGauges {
            rolling_mse: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_ROLLING_MSE,
                server,
            )),
            gamma_abs: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_GAMMA_ABS,
                server,
            )),
            since_reanchor: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_SINCE_REANCHOR,
                server,
            )),
            pending: reg.gauge(&names::server_gauge(names::METRIC_MONITOR_PENDING, server)),
            holdover: reg.gauge(&names::server_gauge(names::METRIC_MONITOR_HOLDOVER, server)),
            headroom: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_TEMP_HEADROOM,
                server,
            )),
            pred_err: reg.summary(&names::server_gauge(
                names::METRIC_MONITOR_PRED_ABS_ERR,
                server,
            )),
        }
    }
}

/// How the monitor degrades when the telemetry stream misbehaves.
///
/// All thresholds are in the simulation's units (seconds, °C). The
/// defaults are conservative for 1 s sampling: a 30 s silence is a stale
/// stream, a 12 °C instantaneous deviation from the calibrated curve is a
/// spike (the physics moves a few tenths of a degree per second), and 30
/// bit-identical readings in a row from a noisy quantized sensor mean the
/// sensor is stuck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Silence (s) after which a server stream is stale and the monitor
    /// enters holdover: it keeps forecasting from the anchored curve but
    /// stops pretending it has fresh ground truth.
    pub staleness_secs: f64,
    /// Absolute deviation (°C) from the calibrated prediction beyond which
    /// a sample is rejected as a spike and never reaches the γ calibrator
    /// (protects Eq. 5–6 from single-outlier poisoning).
    pub spike_threshold_c: f64,
    /// Bit-identical consecutive readings before a sensor is declared
    /// stuck and quarantined from calibration. Sensor noise plus
    /// quantization make accidental exact repeats of this length
    /// essentially impossible, and the gate must not depend on the
    /// calibrated prediction: by the time the run is this long, γ has
    /// already chased the frozen value, so a deviation test would never
    /// fire (exactly the poisoning this policy exists to stop).
    pub stuck_run: usize,
    /// How far (s) a matured forecast's target may sit past the newest
    /// accepted sample and still be scored against it; targets that fell
    /// deeper into a telemetry gap expire unscored.
    pub score_tolerance_secs: f64,
    /// Force exactly one re-anchor when a stale stream recovers, so the
    /// curve restarts from the measured temperature instead of trusting a
    /// calibration that drifted blind through the gap.
    pub reanchor_on_recovery: bool,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            staleness_secs: 30.0,
            spike_threshold_c: 12.0,
            stuck_run: 30,
            score_tolerance_secs: 2.0,
            reanchor_on_recovery: true,
        }
    }
}

impl DegradationPolicy {
    fn validate(&self) -> Result<(), PredictError> {
        if !(self.staleness_secs > 0.0) {
            return Err(PredictError::invalid(
                "staleness_secs",
                format!("must be > 0, got {}", self.staleness_secs),
            ));
        }
        if !(self.spike_threshold_c > 0.0) {
            return Err(PredictError::invalid(
                "spike_threshold_c",
                format!("must be > 0, got {}", self.spike_threshold_c),
            ));
        }
        if self.stuck_run < 2 {
            return Err(PredictError::invalid(
                "stuck_run",
                format!("must be >= 2, got {}", self.stuck_run),
            ));
        }
        if !(self.score_tolerance_secs >= 0.0) {
            return Err(PredictError::invalid(
                "score_tolerance_secs",
                format!("must be >= 0, got {}", self.score_tolerance_secs),
            ));
        }
        Ok(())
    }
}

/// What the degradation machinery did for one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationStats {
    /// Out-of-order samples absorbed (dropped without effect).
    pub ooo_absorbed: u64,
    /// Spike outliers rejected before calibration.
    pub spikes_rejected: u64,
    /// Readings quarantined as a suspected stuck sensor.
    pub stuck_suspected: u64,
    /// Times the stream went stale and the monitor entered holdover.
    pub holdover_entries: u64,
    /// Forced re-anchors on stream recovery.
    pub recovery_reanchors: u64,
    /// Matured forecasts expired unscored because their target fell
    /// inside a telemetry gap.
    pub forecasts_expired: u64,
}

/// Rolling forecast-accuracy statistics for one server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Matured (scored) forecasts.
    pub scored: usize,
    /// Sum of squared forecast errors.
    pub sum_sq_err: f64,
}

impl ServerStats {
    /// Mean squared forecast error, `NaN` before any forecast matured.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            f64::NAN
        } else {
            self.sum_sq_err / self.scored as f64
        }
    }
}

/// One predictor per server plus pending-forecast bookkeeping.
///
/// A monitor covers a contiguous **range** of global server indices
/// (`first_server .. first_server + servers()`); the common whole-fleet
/// case is simply the range starting at zero. Ranged monitors are the
/// building block of [`crate::fleet::ShardedMonitor`]: every internal
/// vector is local to the range while gauges, events and public
/// accessors speak global server ids, so a sharded fleet produces
/// bit-identical per-server state to one monitor covering everything.
#[derive(Debug)]
pub struct FleetMonitor {
    stable: StablePredictor,
    gap_secs: f64,
    /// First global server index this monitor covers.
    lo: usize,
    /// Whether [`FleetMonitor::observe`] must cover the whole simulation
    /// (true for [`FleetMonitor::new`] monitors, false for range shards
    /// that intentionally own a slice of a larger fleet).
    strict: bool,
    predictors: Vec<DynamicPredictor>,
    /// Per-server queue of `(target_time, forecast)`.
    pending: Vec<VecDeque<(f64, f64)>>,
    stats: Vec<ServerStats>,
    /// How much of the simulation event log has been consumed.
    log_cursor: usize,
    anchored: bool,
    /// Per-server re-anchor counts (including the initial anchor).
    reanchors: Vec<u64>,
    /// Per-server time (s) of the most recent anchor.
    last_anchor: Vec<f64>,
    /// Per-server window of recent squared forecast errors for the
    /// rolling-MSE gauge.
    recent_sq_err: Vec<VecDeque<f64>>,
    /// Drift gauges; registered lazily once the obs layer is enabled.
    gauges: Vec<ServerGauges>,
    /// Degradation thresholds for faulted delivery streams.
    policy: DegradationPolicy,
    /// Per-server degradation counters.
    degradation: Vec<DegradationStats>,
    /// Per-server accepted samples (monotone by construction: out-of-order
    /// arrivals are absorbed before or during the push).
    ingested: Vec<TimeSeries>,
    /// Per-server read position into the simulation's delivery stream.
    delivered_cursor: Vec<usize>,
    /// Per-server timestamp (s) of the newest clean-path sample already
    /// consumed, `NaN` before any. Event-driven simulations leave the
    /// trace untouched while a server sleeps; without this guard the
    /// unchanged last sample would re-feed the calibrator every tick.
    last_clean_t: Vec<f64>,
    /// Per-server `(bit pattern, run length)` of the newest delivered
    /// reading, for stuck-sensor detection without float equality.
    stuck_run: Vec<(u64, usize)>,
    /// Per-server time (s) of the most recent delivery, `NaN` before any.
    last_delivery: Vec<f64>,
    /// Per-server holdover flag: the stream is stale and forecasts ride
    /// the anchored curve alone.
    holdover: Vec<bool>,
    /// Per-server absolute forecast-error P² sketches, maintained
    /// unconditionally (unlike the lazily registered gauges) so fleet
    /// roll-ups don't depend on the obs layer being enabled.
    pred_err: Vec<obs::QuantileSketch>,
    /// Die-temperature limit (°C) the headroom gauge measures against.
    temp_limit_c: f64,
}

impl FleetMonitor {
    /// Creates a monitor for `servers` hosts with forecast horizon
    /// `gap_secs`.
    ///
    /// # Errors
    ///
    /// Propagates invalid [`DynamicConfig`]s.
    pub fn new(
        stable: StablePredictor,
        config: DynamicConfig,
        servers: usize,
        gap_secs: Seconds,
    ) -> Result<Self, PredictError> {
        let mut monitor = Self::with_range(stable, config, 0, servers, gap_secs)?;
        monitor.strict = true;
        Ok(monitor)
    }

    /// Creates a monitor covering the global server range
    /// `first_server .. first_server + servers`, with forecast horizon
    /// `gap_secs`. Gauge names, observability events and public
    /// accessors all use global server indices, so ranged monitors over
    /// a partition of the fleet are indistinguishable from one monitor
    /// over the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates invalid [`DynamicConfig`]s.
    pub fn with_range(
        stable: StablePredictor,
        config: DynamicConfig,
        first_server: usize,
        servers: usize,
        gap_secs: Seconds,
    ) -> Result<Self, PredictError> {
        let gap_secs = gap_secs.get();
        if !(gap_secs > 0.0) {
            return Err(PredictError::invalid(
                "gap_secs",
                format!("must be > 0, got {gap_secs}"),
            ));
        }
        let predictors: Result<Vec<_>, _> = (0..servers)
            .map(|_| DynamicPredictor::new(config))
            .collect();
        Ok(FleetMonitor {
            stable,
            gap_secs,
            lo: first_server,
            strict: false,
            predictors: predictors?,
            pending: vec![VecDeque::new(); servers],
            stats: vec![ServerStats::default(); servers],
            log_cursor: 0,
            anchored: false,
            reanchors: vec![0; servers],
            last_anchor: vec![0.0; servers],
            recent_sq_err: vec![VecDeque::new(); servers],
            gauges: Vec::new(),
            policy: DegradationPolicy::default(),
            degradation: vec![DegradationStats::default(); servers],
            ingested: vec![TimeSeries::new(); servers],
            delivered_cursor: vec![0; servers],
            last_clean_t: vec![f64::NAN; servers],
            stuck_run: vec![(0, 0); servers],
            last_delivery: vec![f64::NAN; servers],
            holdover: vec![false; servers],
            pred_err: vec![obs::QuantileSketch::new(); servers],
            temp_limit_c: DEFAULT_TEMP_LIMIT_C,
        })
    }

    /// First global server index this monitor covers (0 for a
    /// whole-fleet monitor).
    #[must_use]
    pub fn first_server(&self) -> usize {
        self.lo
    }

    /// Maps a global server id to this monitor's local index, `None`
    /// when the server is outside the covered range.
    fn local(&self, server: ServerId) -> Option<usize> {
        let local = server.raw().checked_sub(self.lo)?;
        (local < self.predictors.len()).then_some(local)
    }

    /// Replaces the die-temperature limit the per-server headroom gauge
    /// measures against (default [`DEFAULT_TEMP_LIMIT_C`]).
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] for a non-finite or non-positive
    /// limit.
    pub fn with_temp_limit(mut self, limit: Celsius) -> Result<Self, PredictError> {
        let limit = limit.get();
        if !(limit.is_finite() && limit > 0.0) {
            return Err(PredictError::invalid(
                "temp_limit_c",
                format!("must be finite and > 0, got {limit}"),
            ));
        }
        self.temp_limit_c = limit;
        Ok(self)
    }

    /// The die-temperature limit (°C) behind the headroom gauge.
    #[must_use]
    pub fn temp_limit_c(&self) -> f64 {
        self.temp_limit_c
    }

    /// Replaces the degradation policy (validating it).
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] for out-of-domain thresholds.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Result<Self, PredictError> {
        policy.validate()?;
        self.policy = policy;
        Ok(self)
    }

    /// The active degradation policy.
    #[must_use]
    pub fn policy(&self) -> &DegradationPolicy {
        &self.policy
    }

    /// Degradation counters for a server.
    #[must_use]
    pub fn degradation(&self, server: ServerId) -> DegradationStats {
        self.local(server)
            .and_then(|i| self.degradation.get(i))
            .copied()
            .unwrap_or_default()
    }

    /// Whether a server's stream is currently stale (holdover active).
    #[must_use]
    pub fn in_holdover(&self, server: ServerId) -> bool {
        self.local(server)
            .and_then(|i| self.holdover.get(i))
            .copied()
            .unwrap_or(false)
    }

    /// Re-anchors one server's predictor and does the observability
    /// bookkeeping (counter, event record, time-of-anchor).
    fn reanchor(
        &mut self,
        sim: &Simulation,
        sid: ServerId,
        t_secs: f64,
        ambient_c: Celsius,
        reason: &'static str,
    ) {
        let Some(local) = self.local(sid) else {
            return; // another shard's server
        };
        let Ok(server) = sim.datacenter().server(sid) else {
            return;
        };
        let snap = ConfigSnapshot::capture(sim, sid, ambient_c);
        let phi0 = server.die_temperature();
        let psi_stable = self.stable.predict(&snap);
        self.apply_anchor(local, t_secs, phi0, psi_stable, reason);
    }

    /// Anchors one predictor to an already-computed ψ_stable and records
    /// the bookkeeping shared by the scalar and batch anchor paths.
    fn apply_anchor(
        &mut self,
        idx: usize,
        t_secs: f64,
        phi0: f64,
        psi_stable: f64,
        reason: &'static str,
    ) {
        self.predictors[idx].anchor(
            Seconds::new(t_secs),
            Celsius::new(phi0),
            Celsius::new(psi_stable),
        );
        self.reanchors[idx] += 1;
        self.last_anchor[idx] = t_secs;
        OBS_REANCHORS.inc();
        let global = self.lo + idx;
        obs::emit_with(|| ObsEvent::Reanchor {
            t_secs,
            server: global,
            phi0_c: phi0,
            psi_stable_c: psi_stable,
            reason: reason.to_string(),
        });
    }

    /// Number of monitored servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.predictors.len()
    }

    /// Forecast horizon (s).
    #[must_use]
    pub fn gap_secs(&self) -> f64 {
        self.gap_secs
    }

    /// Consumes the simulation's current state: new events re-anchor the
    /// affected predictors; each server's newest sensor sample feeds
    /// calibration; matured forecasts are scored; one fresh forecast per
    /// server is enqueued. Call once per simulation step (after
    /// `sim.step()`); `ambient_c` is the room temperature used when
    /// capturing configuration snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has more servers than the monitor.
    pub fn observe(&mut self, sim: &Simulation, ambient_c: Celsius) {
        let _span = obs::span(names::SPAN_MONITOR_OBSERVE);
        let _sweep_timer = OBS_OBSERVE_NS.start_timer();
        let n = self.servers();
        assert!(
            !self.strict || sim.datacenter().len() <= self.lo + n,
            "monitor covers servers {}..{}, simulation has {}",
            self.lo,
            self.lo + n,
            sim.datacenter().len()
        );
        // Servers of this monitor's range that exist in the simulation,
        // as local indices.
        let covered = sim.datacenter().len().saturating_sub(self.lo).min(n);
        if obs::enabled() && self.gauges.is_empty() {
            let lo = self.lo;
            self.gauges = (0..n).map(|i| ServerGauges::register(lo + i)).collect();
        }

        // Initial anchor for every covered server, once traces exist:
        // one batch ψ_stable prediction over the range instead of a
        // scalar predict per server. `predict_batch` is per-sample
        // independent (bitwise equal to scalar predicts), so a range
        // batch anchors exactly as a whole-fleet batch would.
        if !self.anchored {
            self.anchored = true;
            let t = sim.now().as_secs_f64();
            let snapshots: Vec<ConfigSnapshot> = (0..covered)
                .map(|idx| ConfigSnapshot::capture(sim, ServerId::new(self.lo + idx), ambient_c))
                .collect();
            let psi = self.stable.predict_batch(&snapshots);
            for (idx, psi_stable) in psi.into_iter().enumerate() {
                let Ok(server) = sim.datacenter().server(ServerId::new(self.lo + idx)) else {
                    continue;
                };
                let phi0 = server.die_temperature();
                self.apply_anchor(idx, t, phi0, psi_stable, "initial");
            }
        }

        // Re-anchor on new reconfiguration events. An entry the fault
        // plan marked lost never reached the monitor: no event re-anchor;
        // the spike/staleness machinery has to absorb the drift instead.
        while self.log_cursor < sim.log().len() {
            let (at, event) = &sim.log()[self.log_cursor];
            let at = at.as_secs_f64();
            let lost = sim.log_entry_lost(self.log_cursor);
            self.log_cursor += 1;
            if lost {
                continue;
            }
            let touched: Vec<(ServerId, &'static str)> = match event {
                SimEvent::VmBooted { server, .. } => vec![(*server, "vm_boot")],
                SimEvent::VmStopped { server, .. } => vec![(*server, "vm_stop")],
                SimEvent::MigrationStarted { source, dest, .. } => {
                    vec![(*source, "migration_start"), (*dest, "migration_start")]
                }
                SimEvent::MigrationCompleted { source, dest, .. } => {
                    vec![
                        (*source, "migration_complete"),
                        (*dest, "migration_complete"),
                    ]
                }
                _ => vec![],
            };
            for (sid, reason) in touched {
                self.reanchor(sim, sid, at, ambient_c, reason);
            }
        }

        // Feed samples, score matured forecasts, enqueue fresh ones.
        let now = sim.now().as_secs_f64();
        for idx in 0..covered {
            let global = self.lo + idx;
            let sid = ServerId::new(global);
            // A faulted delivery stream goes through the degradation
            // machinery; the clean path below reads the physics trace
            // directly and is untouched by fault handling.
            if sim.delivered(sid).is_some() {
                self.observe_faulted(sim, idx, now, ambient_c);
                continue;
            }
            let Ok(trace) = sim.trace(sid) else { continue };
            let Some((t, measured)) = trace.sensor_c.last() else {
                continue;
            };
            // Event-driven simulations record nothing while a server
            // sleeps; consume each sample once (bit-compare: timestamps
            // are copied verbatim, and NaN-before-any never matches).
            if self.last_clean_t[idx].to_bits() == t.to_bits() {
                continue;
            }
            self.last_clean_t[idx] = t;
            self.predictors[idx].observe(Seconds::new(t), Celsius::new(measured));
            OBS_SAMPLES.inc();
            obs::emit_with(|| ObsEvent::Sample {
                t_secs: t,
                server: global,
                temp_c: measured,
            });
            while let Some(&(target, forecast)) = self.pending[idx].front() {
                if target > now {
                    break;
                }
                self.pending[idx].pop_front();
                let err = measured - forecast;
                self.stats[idx].scored += 1;
                self.stats[idx].sum_sq_err += err * err;
                if self.recent_sq_err[idx].len() >= ROLLING_WINDOW {
                    self.recent_sq_err[idx].pop_front();
                }
                self.recent_sq_err[idx].push_back(err * err);
                OBS_SCORED.inc();
                OBS_ABS_ERR.observe(err.abs());
                self.pred_err[idx].observe(err.abs());
                if let Some(gauges) = self.gauges.get(idx) {
                    gauges.pred_err.observe(err.abs());
                }
                obs::emit_with(|| ObsEvent::ForecastScored {
                    t_secs: now,
                    server: global,
                    err_c: err,
                });
            }
            let forecast =
                self.predictors[idx].predict_ahead(Seconds::new(t), Seconds::new(self.gap_secs));
            if forecast.is_finite() {
                self.pending[idx].push_back((t + self.gap_secs, forecast));
                OBS_ISSUED.inc();
                obs::emit_with(|| ObsEvent::Forecast {
                    t_secs: t,
                    server: global,
                    target_t_secs: t + self.gap_secs,
                    temp_c: forecast,
                });
            }
            if let Some(gauges) = self.gauges.get(idx) {
                gauges.rolling_mse.set(self.rolling_mse(sid));
                gauges.gamma_abs.set(self.predictors[idx].gamma().abs());
                gauges.since_reanchor.set(now - self.last_anchor[idx]);
                gauges.pending.set(self.pending[idx].len() as f64);
                gauges.headroom.set(self.temp_limit_c - measured);
            }
        }
    }

    /// Ingests one server's faulted delivery stream: absorbs out-of-order
    /// samples, quarantines spikes and suspected-stuck readings before
    /// they reach the γ calibrator, tracks staleness/holdover, forces one
    /// re-anchor on stream recovery, expires forecasts that matured inside
    /// a gap and keeps forecasting from the anchored curve throughout.
    fn observe_faulted(&mut self, sim: &Simulation, idx: usize, now: f64, ambient_c: Celsius) {
        let global = self.lo + idx;
        let sid = ServerId::new(global);
        let policy = self.policy;
        let Some(delivered) = sim.delivered(sid) else {
            return;
        };
        let start = self.delivered_cursor[idx];
        self.delivered_cursor[idx] = delivered.len();
        for &(t, v) in &delivered[start..] {
            let prev = self.last_delivery[idx];
            let recovered = prev.is_finite() && t - prev >= policy.staleness_secs;
            self.last_delivery[idx] = if prev.is_finite() { prev.max(t) } else { t };

            // Stuck tracking on the raw bit pattern: sensor noise plus
            // quantization make long accidental exact repeats unlikely.
            let bits = v.to_bits();
            let (last_bits, run) = self.stuck_run[idx];
            self.stuck_run[idx] = if bits == last_bits {
                (bits, run + 1)
            } else {
                (bits, 1)
            };

            // Out-of-order arrivals carry stale information: absorb them
            // into holdover rather than rewinding the calibrator.
            if let Some((last_t, _)) = self.ingested[idx].last() {
                if t < last_t {
                    self.degradation[idx].ooo_absorbed += 1;
                    OBS_OOO.inc();
                    continue;
                }
            }

            // The stream came back after a gap: re-anchor once from the
            // measured temperature before trusting calibration again —
            // γ drifted blind through the silence.
            if recovered && policy.reanchor_on_recovery {
                let snap = ConfigSnapshot::capture(sim, sid, ambient_c);
                let psi_stable = self.stable.predict(&snap);
                self.apply_anchor(idx, t, v, psi_stable, "recovery");
                self.degradation[idx].recovery_reanchors += 1;
                OBS_RECOVERY_REANCHORS.inc();
                self.holdover[idx] = false;
            }

            let estimate = self.predictors[idx].predict_ahead(Seconds::new(t), Seconds::ZERO);
            if estimate.is_finite() && (v - estimate).abs() > policy.spike_threshold_c {
                self.degradation[idx].spikes_rejected += 1;
                OBS_SPIKES_REJECTED.inc();
                continue;
            }
            if self.stuck_run[idx].1 >= policy.stuck_run {
                self.degradation[idx].stuck_suspected += 1;
                OBS_STUCK_SUSPECTED.inc();
                continue;
            }

            // Accepted: record it and feed the calibrator.
            let recorded = self.ingested[idx].push(
                SimTime::from_millis((t * 1000.0).round().max(0.0) as u64),
                v,
            );
            if let Err(TelemetryError::NonMonotonicTime { .. }) = recorded {
                // Sub-millisecond inversions the ordering check missed.
                self.degradation[idx].ooo_absorbed += 1;
                OBS_OOO.inc();
                continue;
            }
            self.predictors[idx].observe(Seconds::new(t), Celsius::new(v));
            OBS_SAMPLES.inc();
            obs::emit_with(|| ObsEvent::Sample {
                t_secs: t,
                server: global,
                temp_c: v,
            });
        }

        // Staleness bookkeeping at observation time.
        let last = self.last_delivery[idx];
        if last.is_finite() {
            if !self.holdover[idx] && now - last >= policy.staleness_secs {
                self.holdover[idx] = true;
                self.degradation[idx].holdover_entries += 1;
                OBS_HOLDOVER_ENTRIES.inc();
            } else if self.holdover[idx] && now - last < policy.staleness_secs {
                self.holdover[idx] = false;
            }
        }

        // Score matured forecasts against the newest accepted sample;
        // targets that matured inside a telemetry gap expire unscored
        // rather than being graded against stale ground truth.
        let reference = self.ingested[idx].last();
        while let Some(&(target, forecast)) = self.pending[idx].front() {
            if target > now {
                break;
            }
            self.pending[idx].pop_front();
            match reference {
                Some((rt, rv)) if target - rt <= policy.score_tolerance_secs => {
                    let err = rv - forecast;
                    self.stats[idx].scored += 1;
                    self.stats[idx].sum_sq_err += err * err;
                    if self.recent_sq_err[idx].len() >= ROLLING_WINDOW {
                        self.recent_sq_err[idx].pop_front();
                    }
                    self.recent_sq_err[idx].push_back(err * err);
                    OBS_SCORED.inc();
                    OBS_ABS_ERR.observe(err.abs());
                    self.pred_err[idx].observe(err.abs());
                    if let Some(gauges) = self.gauges.get(idx) {
                        gauges.pred_err.observe(err.abs());
                    }
                    obs::emit_with(|| ObsEvent::ForecastScored {
                        t_secs: now,
                        server: global,
                        err_c: err,
                    });
                }
                _ => {
                    self.degradation[idx].forecasts_expired += 1;
                    OBS_EXPIRED.inc();
                }
            }
        }

        // Forecast from the wall clock: holdover keeps issuing even while
        // the stream is silent — the anchored curve is all we have.
        let forecast =
            self.predictors[idx].predict_ahead(Seconds::new(now), Seconds::new(self.gap_secs));
        if forecast.is_finite() {
            self.pending[idx].push_back((now + self.gap_secs, forecast));
            OBS_ISSUED.inc();
            obs::emit_with(|| ObsEvent::Forecast {
                t_secs: now,
                server: global,
                target_t_secs: now + self.gap_secs,
                temp_c: forecast,
            });
        }
        if let Some(gauges) = self.gauges.get(idx) {
            gauges.rolling_mse.set(self.rolling_mse(sid));
            gauges.gamma_abs.set(self.predictors[idx].gamma().abs());
            gauges.since_reanchor.set(now - self.last_anchor[idx]);
            gauges.pending.set(self.pending[idx].len() as f64);
            gauges
                .holdover
                .set(if self.holdover[idx] { 1.0 } else { 0.0 });
            if let Some((_, v)) = self.ingested[idx].last() {
                gauges.headroom.set(self.temp_limit_c - v);
            }
        }
    }

    /// MSE over the most recent [`ROLLING_WINDOW`] scored forecasts for a
    /// server (`NaN` before any matured). While fewer than a full window
    /// have been scored this equals [`ServerStats::mse`].
    #[must_use]
    pub fn rolling_mse(&self, server: ServerId) -> f64 {
        match self.local(server).and_then(|i| self.recent_sq_err.get(i)) {
            Some(w) if !w.is_empty() => w.iter().sum::<f64>() / w.len() as f64,
            _ => f64::NAN,
        }
    }

    /// Number of anchor operations performed for a server, including the
    /// initial anchor.
    #[must_use]
    pub fn reanchor_count(&self, server: ServerId) -> u64 {
        self.local(server)
            .and_then(|i| self.reanchors.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// Seconds of simulation time of a server's most recent anchor.
    #[must_use]
    pub fn last_anchor_secs(&self, server: ServerId) -> f64 {
        self.local(server)
            .and_then(|i| self.last_anchor.get(i))
            .copied()
            .unwrap_or(0.0)
    }

    /// Depth of a server's forecast-maturity queue.
    #[must_use]
    pub fn pending_forecasts(&self, server: ServerId) -> usize {
        self.local(server)
            .and_then(|i| self.pending.get(i))
            .map_or(0, VecDeque::len)
    }

    /// The current forecast (`gap_secs` ahead of the latest sample) for a
    /// server, if one is pending.
    #[must_use]
    pub fn latest_forecast(&self, server: ServerId) -> Option<(f64, f64)> {
        self.pending.get(self.local(server)?)?.back().copied()
    }

    /// Per-server accuracy stats.
    #[must_use]
    pub fn stats(&self, server: ServerId) -> ServerStats {
        self.local(server)
            .and_then(|i| self.stats.get(i))
            .copied()
            .unwrap_or_default()
    }

    /// Fleet-wide MSE over all matured forecasts (`NaN` before any).
    #[must_use]
    pub fn fleet_mse(&self) -> f64 {
        let scored: usize = self.stats.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return f64::NAN;
        }
        self.stats.iter().map(|s| s.sum_sq_err).sum::<f64>() / scored as f64
    }

    /// Per-server accuracy stats for the whole covered range, in local
    /// (range) order. [`crate::fleet::ShardedMonitor`] concatenates
    /// these slices in shard order to reduce fleet gauges with exactly
    /// the floating-point association a whole-fleet monitor uses.
    #[must_use]
    pub fn server_stats(&self) -> &[ServerStats] {
        &self.stats
    }

    /// One server's absolute forecast-error P² sketch (p50/p95/p99),
    /// maintained whether or not the obs layer is enabled.
    #[must_use]
    pub fn pred_err_sketch(&self, server: ServerId) -> Option<&obs::QuantileSketch> {
        self.pred_err.get(self.local(server)?)
    }

    /// All per-server forecast-error sketches in local (range) order.
    #[must_use]
    pub fn pred_err_sketches(&self) -> &[obs::QuantileSketch] {
        &self.pred_err
    }

    /// Fleet-level roll-up of the per-server forecast-error sketches,
    /// folded in server-index order (see
    /// [`obs::MergedQuantiles::absorb`] for the merge contract).
    #[must_use]
    pub fn fleet_pred_err(&self) -> obs::MergedQuantiles {
        let mut merged = obs::MergedQuantiles::new();
        for sketch in &self.pred_err {
            merged.absorb(sketch);
        }
        merged
    }

    /// The per-server dynamic predictors (read access for diagnostics).
    #[must_use]
    pub fn predictors(&self) -> &[DynamicPredictor] {
        &self.predictors
    }

    /// Cross-checks the monitor's internal bookkeeping against the
    /// simulation it has been observing — the monitor-side oracle of
    /// the scenario fuzzer's battery. Returns one message per violated
    /// consistency rule (empty = healthy):
    ///
    /// * **coverage** — every delivered sample has been consumed
    ///   (`delivered_cursor` matches the stream length, never past it);
    /// * **ingestion** — accepted samples are finite and no newer than
    ///   the simulation clock;
    /// * **anchoring** — anchor timestamps are finite, not in the
    ///   future, and re-anchor counts are consistent with the recovery
    ///   counters;
    /// * **forecasts** — pending queues are sorted by target time with
    ///   finite values;
    /// * **scoring** — squared-error accumulators are finite and
    ///   non-negative, holdover flags imply a recorded holdover entry.
    #[must_use]
    pub fn invariant_report(&self, sim: &Simulation) -> Vec<String> {
        let mut violations = Vec::new();
        let now = sim.now().as_secs_f64();
        for i in 0..self.servers() {
            let global = self.lo + i;
            let id = ServerId::new(global);
            if let Some(stream) = sim.delivered(id) {
                let cursor = self.delivered_cursor.get(i).copied().unwrap_or(0);
                if cursor != stream.len() {
                    violations.push(format!(
                        "server {global}: consumed {cursor} of {} delivered samples",
                        stream.len()
                    ));
                }
            }
            if let Some(ingested) = self.ingested.get(i) {
                if let Some((t, v)) = ingested.iter().last() {
                    if !t.is_finite() || t > now {
                        violations.push(format!(
                            "server {global}: ingested sample at t={t} beyond clock {now}"
                        ));
                    }
                    if !v.is_finite() {
                        violations.push(format!(
                            "server {global}: non-finite ingested value at t={t}"
                        ));
                    }
                }
            }
            let anchor = self.last_anchor.get(i).copied().unwrap_or(0.0);
            if !anchor.is_finite() || anchor > now {
                violations.push(format!(
                    "server {global}: anchor at t={anchor} beyond clock {now}"
                ));
            }
            let reanchors = self.reanchors.get(i).copied().unwrap_or(0);
            let degradation = self.degradation.get(i).copied().unwrap_or_default();
            if degradation.recovery_reanchors > reanchors {
                violations.push(format!(
                    "server {global}: {} recovery re-anchors exceed {reanchors} total anchors",
                    degradation.recovery_reanchors
                ));
            }
            if self.holdover.get(i).copied().unwrap_or(false) && degradation.holdover_entries == 0 {
                violations.push(format!(
                    "server {global}: in holdover with no holdover entry recorded"
                ));
            }
            if let Some(pending) = self.pending.get(i) {
                let mut prev = f64::NEG_INFINITY;
                for &(target, forecast) in pending {
                    if !target.is_finite() || !forecast.is_finite() || target < prev {
                        violations.push(format!(
                            "server {global}: pending forecast ({target}, {forecast}) \
                             out of order or non-finite"
                        ));
                        break;
                    }
                    prev = target;
                }
            }
            if let Some(stats) = self.stats.get(i) {
                if !stats.sum_sq_err.is_finite() || stats.sum_sq_err < 0.0 {
                    violations.push(format!(
                        "server {global}: squared-error accumulator {} invalid",
                        stats.sum_sq_err
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::{
        AmbientModel, CaseGenerator, ClockMode, Datacenter, Event, ServerSpec, SimDuration,
        SimTime, TaskProfile, VmSpec,
    };
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    /// Serializes tests that drive `FleetMonitor::observe` so the one test
    /// that enables the global obs registry cannot pollute (or be polluted
    /// by) concurrently running monitors.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn stable_model() -> StablePredictor {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(60, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(900)))
            .collect();
        let outcomes = run_experiments(&configs);
        StablePredictor::fit(
            &outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    fn fleet_sim() -> Simulation {
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        for i in 0..3 {
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("v{i}"), 2 + i as u32, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        }
        sim
    }

    #[test]
    fn monitor_scores_forecasts_in_band() {
        let _guard = obs_test_lock();
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        // A mid-run burst on server 0 exercises re-anchoring.
        sim.schedule(
            SimTime::from_secs(600),
            Event::BootVm {
                server: ServerId::new(0),
                spec: VmSpec::new("burst", 4, 8.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..1500 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let fleet = monitor.fleet_mse();
        assert!(fleet.is_finite());
        assert!(fleet < 3.0, "fleet mse {fleet}");
        for i in 0..3 {
            let s = monitor.stats(ServerId::new(i));
            assert!(s.scored > 1000, "server {i} scored only {}", s.scored);
        }
        // The latest forecast exists and is sane.
        let (target, value) = monitor.latest_forecast(ServerId::new(0)).unwrap();
        assert!(target > 1400.0);
        assert!((20.0..90.0).contains(&value));
        let report = monitor.invariant_report(&sim);
        assert!(report.is_empty(), "consistency violations: {report:?}");
    }

    #[test]
    fn event_mode_sparse_traces_flow_through_the_clean_path() {
        let _guard = obs_test_lock();
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim =
            Simulation::new(dc, AmbientModel::Fixed(24.0), 7).with_clock(ClockMode::Event);
        for i in 0..3 {
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("v{i}"), 1, 2.0, TaskProfile::Idle),
            )
            .unwrap();
        }
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        for _ in 0..1500 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        // The fleet actually slept — traces are irregular, not 1 Hz.
        assert!(sim.step_stats().skip_factor() > 2.0);
        for i in 0..3 {
            let sid = ServerId::new(i);
            let samples = sim.trace(sid).unwrap().sensor_c.len();
            assert!(samples < 1200, "server {i} trace not sparse: {samples}");
            let s = monitor.stats(sid);
            assert!(s.scored > 10, "server {i} scored only {}", s.scored);
            // Each sample is consumed once: forecasts (and scores) cannot
            // outnumber the sparse samples that triggered them.
            assert!(
                s.scored <= samples,
                "server {i} re-consumed sleeping samples: {} scored, {samples} samples",
                s.scored
            );
            assert!(!monitor.in_holdover(sid), "clean stream flagged stale");
        }
        let fleet = monitor.fleet_mse();
        assert!(fleet.is_finite(), "fleet mse {fleet}");
        let report = monitor.invariant_report(&sim);
        assert!(report.is_empty(), "consistency violations: {report:?}");
    }

    #[test]
    fn reanchoring_happens_on_events() {
        let _guard = obs_test_lock();
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        for _ in 0..5 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let before = monitor.predictors()[1]
            .curve_value(Seconds::new(1.0))
            .unwrap();
        // Boot a heavy VM on server 1 → its predictor must re-anchor to a
        // hotter target.
        sim.schedule(
            SimTime::from_secs(6),
            Event::BootVm {
                server: ServerId::new(1),
                spec: VmSpec::new("hog", 8, 16.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..10 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let after = monitor.predictors()[1]
            .curve_value(Seconds::new(2000.0))
            .unwrap();
        assert!(after > before + 2.0, "no re-anchor: {before} -> {after}");
    }

    #[test]
    fn migration_reanchors_once_per_affected_server() {
        let _guard = obs_test_lock();
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        let vm = sim
            .boot_vm_now(
                ServerId::new(0),
                VmSpec::new("mover", 2, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(5.0)).unwrap();

        vmtherm_obs::set_enabled(true);
        let registry = vmtherm_obs::global();
        let reanchor_total_before = registry.counter(names::METRIC_REANCHOR_TOTAL).get();

        sim.step();
        monitor.observe(&sim, Celsius::new(24.0));
        // First observe anchors every server once, plus one more on server 0
        // for the `VmBooted` event already in the log.
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 2, "server 0");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 1, "server 1");
        assert_eq!(monitor.reanchor_count(ServerId::new(2)), 1, "server 2");

        sim.schedule(
            SimTime::from_secs(6),
            Event::MigrateVm {
                vm,
                dest: ServerId::new(1),
            },
        );
        // Run past MigrationStarted (t=6) but not MigrationCompleted
        // (4 GB at 10 Gbit/s × 1.3 ≈ 4.2 s later).
        while sim.now() < SimTime::from_secs(8) {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::MigrationStarted { .. })));
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 3, "source");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 2, "dest");
        assert_eq!(monitor.reanchor_count(ServerId::new(2)), 1, "bystander");

        // Run past MigrationCompleted and long enough to mature forecasts,
        // but fewer than ROLLING_WINDOW of them so the rolling-MSE gauge
        // must equal the all-time ServerStats MSE.
        while sim.now() < SimTime::from_secs(60) {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::MigrationCompleted { .. })));
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 4, "source done");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 3, "dest done");
        assert_eq!(
            monitor.reanchor_count(ServerId::new(2)),
            1,
            "bystander done"
        );

        // The global counter moved by exactly the per-server totals.
        let total: u64 = (0..3)
            .map(|i| monitor.reanchor_count(ServerId::new(i)))
            .sum();
        assert_eq!(
            registry.counter(names::METRIC_REANCHOR_TOTAL).get() - reanchor_total_before,
            total
        );

        // Drift gauges agree with ServerStats and the monitor's own view.
        for i in 0..3 {
            let sid = ServerId::new(i);
            let stats = monitor.stats(sid);
            assert!(
                stats.scored > 0 && (stats.scored as usize) < super::ROLLING_WINDOW,
                "server {i} scored {}",
                stats.scored
            );
            let mse = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_ROLLING_MSE, i))
                .get();
            assert!((mse - stats.mse()).abs() < 1e-12, "server {i} mse gauge");
            assert!((mse - monitor.rolling_mse(sid)).abs() < 1e-12);
            let gamma_abs = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_GAMMA_ABS, i))
                .get();
            assert!(
                (gamma_abs - monitor.predictors()[i].gamma().abs()).abs() < 1e-12,
                "server {i} gamma gauge"
            );
            let since = registry
                .gauge(&names::server_gauge(
                    names::METRIC_MONITOR_SINCE_REANCHOR,
                    i,
                ))
                .get();
            assert!(
                (since - (sim.now().as_secs_f64() - monitor.last_anchor_secs(sid))).abs() < 1e-9,
                "server {i} since-reanchor gauge"
            );
            let pending = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_PENDING, i))
                .get();
            assert_eq!(pending as usize, monitor.pending_forecasts(sid));
            let headroom = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_TEMP_HEADROOM, i))
                .get();
            let (_, measured) = sim.trace(sid).unwrap().sensor_c.last().unwrap();
            assert!(
                (headroom - (DEFAULT_TEMP_LIMIT_C - measured)).abs() < 1e-9,
                "server {i} headroom gauge {headroom} vs measured {measured}"
            );
            let pred_err =
                registry.summary(&names::server_gauge(names::METRIC_MONITOR_PRED_ABS_ERR, i));
            assert_eq!(
                pred_err.count(),
                stats.scored as u64,
                "server {i} pred-err summary count"
            );
            assert!(pred_err.quantile(0.95) >= pred_err.quantile(0.5));
        }
        // The observe-sweep latency summary saw every observe call.
        assert!(registry.summary(names::METRIC_MONITOR_OBSERVE_NS).count() > 0);
        vmtherm_obs::set_enabled(false);
    }

    #[test]
    fn temp_limit_is_validated_and_applied() {
        let monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 1, Seconds::new(60.0))
                .unwrap()
                .with_temp_limit(Celsius::new(95.0))
                .unwrap();
        assert_eq!(monitor.temp_limit_c(), 95.0);
        assert!(matches!(
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 1, Seconds::new(60.0))
                .unwrap()
                .with_temp_limit(Celsius::new(-1.0)),
            Err(PredictError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_bad_gap() {
        assert!(matches!(
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 2, Seconds::ZERO),
            Err(PredictError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unmonitored_server_queries_are_safe() {
        let monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 1, Seconds::new(60.0)).unwrap();
        assert!(monitor.latest_forecast(ServerId::new(9)).is_none());
        assert_eq!(monitor.stats(ServerId::new(9)), ServerStats::default());
        assert!(monitor.fleet_mse().is_nan());
    }
}
