//! Fleet monitoring: the paper's deployment mode as a reusable component.
//!
//! "Then the model received data collected online and output prediction
//! values" — [`FleetMonitor`] wires one calibrated [`DynamicPredictor`]
//! per server to a running simulation: it consumes sensor samples, watches
//! the event log and **re-anchors automatically** on every reconfiguration
//! (VM boot/stop, migration start/completion) using fresh ψ_stable
//! predictions from the stable model, while scoring each forecast when its
//! target time arrives.

use crate::dynamic::{DynamicConfig, DynamicPredictor};
use crate::error::PredictError;
use crate::predictor::OnlinePredictor;
use crate::stable::StablePredictor;
use std::collections::VecDeque;
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_sim::{ServerId, SimEvent, Simulation};
use vmtherm_units::{Celsius, Seconds};

/// Rolling forecast-accuracy statistics for one server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Matured (scored) forecasts.
    pub scored: usize,
    /// Sum of squared forecast errors.
    pub sum_sq_err: f64,
}

impl ServerStats {
    /// Mean squared forecast error, `NaN` before any forecast matured.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            f64::NAN
        } else {
            self.sum_sq_err / self.scored as f64
        }
    }
}

/// One predictor per server plus pending-forecast bookkeeping.
#[derive(Debug)]
pub struct FleetMonitor {
    stable: StablePredictor,
    gap_secs: f64,
    predictors: Vec<DynamicPredictor>,
    /// Per-server queue of `(target_time, forecast)`.
    pending: Vec<VecDeque<(f64, f64)>>,
    stats: Vec<ServerStats>,
    /// How much of the simulation event log has been consumed.
    log_cursor: usize,
    anchored: bool,
}

impl FleetMonitor {
    /// Creates a monitor for `servers` hosts with forecast horizon
    /// `gap_secs`.
    ///
    /// # Errors
    ///
    /// Propagates invalid [`DynamicConfig`]s.
    pub fn new(
        stable: StablePredictor,
        config: DynamicConfig,
        servers: usize,
        gap_secs: Seconds,
    ) -> Result<Self, PredictError> {
        let gap_secs = gap_secs.get();
        if !(gap_secs > 0.0) {
            return Err(PredictError::invalid(
                "gap_secs",
                format!("must be > 0, got {gap_secs}"),
            ));
        }
        let predictors: Result<Vec<_>, _> = (0..servers)
            .map(|_| DynamicPredictor::new(config))
            .collect();
        Ok(FleetMonitor {
            stable,
            gap_secs,
            predictors: predictors?,
            pending: vec![VecDeque::new(); servers],
            stats: vec![ServerStats::default(); servers],
            log_cursor: 0,
            anchored: false,
        })
    }

    /// Number of monitored servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.predictors.len()
    }

    /// Forecast horizon (s).
    #[must_use]
    pub fn gap_secs(&self) -> f64 {
        self.gap_secs
    }

    /// Consumes the simulation's current state: new events re-anchor the
    /// affected predictors; each server's newest sensor sample feeds
    /// calibration; matured forecasts are scored; one fresh forecast per
    /// server is enqueued. Call once per simulation step (after
    /// `sim.step()`); `ambient_c` is the room temperature used when
    /// capturing configuration snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has more servers than the monitor.
    pub fn observe(&mut self, sim: &Simulation, ambient_c: Celsius) {
        let n = self.servers();
        assert!(
            sim.datacenter().len() <= n,
            "monitor sized for {n} servers, simulation has {}",
            sim.datacenter().len()
        );

        // Initial anchor for every server, once traces exist.
        if !self.anchored {
            self.anchored = true;
            for idx in 0..sim.datacenter().len() {
                let sid = ServerId::new(idx);
                let Ok(server) = sim.datacenter().server(sid) else {
                    continue;
                };
                let snap = ConfigSnapshot::capture(sim, sid, ambient_c);
                self.predictors[idx].anchor_with_model(
                    Seconds::new(sim.now().as_secs_f64()),
                    Celsius::new(server.die_temperature()),
                    &self.stable,
                    &snap,
                );
            }
        }

        // Re-anchor on new reconfiguration events.
        let log = sim.log();
        while self.log_cursor < log.len() {
            let (at, event) = &log[self.log_cursor];
            self.log_cursor += 1;
            let touched: Vec<ServerId> = match event {
                SimEvent::VmBooted { server, .. } | SimEvent::VmStopped { server, .. } => {
                    vec![*server]
                }
                SimEvent::MigrationStarted { source, dest, .. }
                | SimEvent::MigrationCompleted { source, dest, .. } => vec![*source, *dest],
                _ => vec![],
            };
            for sid in touched {
                let Ok(server) = sim.datacenter().server(sid) else {
                    continue;
                };
                let snap = ConfigSnapshot::capture(sim, sid, ambient_c);
                self.predictors[sid.raw()].anchor_with_model(
                    Seconds::new(at.as_secs_f64()),
                    Celsius::new(server.die_temperature()),
                    &self.stable,
                    &snap,
                );
            }
        }

        // Feed samples, score matured forecasts, enqueue fresh ones.
        let now = sim.now().as_secs_f64();
        for idx in 0..sim.datacenter().len() {
            let sid = ServerId::new(idx);
            let Ok(trace) = sim.trace(sid) else { continue };
            let Some((t, measured)) = trace.sensor_c.last() else {
                continue;
            };
            self.predictors[idx].observe(Seconds::new(t), Celsius::new(measured));
            while let Some(&(target, forecast)) = self.pending[idx].front() {
                if target > now {
                    break;
                }
                self.pending[idx].pop_front();
                let err = measured - forecast;
                self.stats[idx].scored += 1;
                self.stats[idx].sum_sq_err += err * err;
            }
            let forecast =
                self.predictors[idx].predict_ahead(Seconds::new(t), Seconds::new(self.gap_secs));
            if forecast.is_finite() {
                self.pending[idx].push_back((t + self.gap_secs, forecast));
            }
        }
    }

    /// The current forecast (`gap_secs` ahead of the latest sample) for a
    /// server, if one is pending.
    #[must_use]
    pub fn latest_forecast(&self, server: ServerId) -> Option<(f64, f64)> {
        self.pending.get(server.raw())?.back().copied()
    }

    /// Per-server accuracy stats.
    #[must_use]
    pub fn stats(&self, server: ServerId) -> ServerStats {
        self.stats.get(server.raw()).copied().unwrap_or_default()
    }

    /// Fleet-wide MSE over all matured forecasts (`NaN` before any).
    #[must_use]
    pub fn fleet_mse(&self) -> f64 {
        let scored: usize = self.stats.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return f64::NAN;
        }
        self.stats.iter().map(|s| s.sum_sq_err).sum::<f64>() / scored as f64
    }

    /// The per-server dynamic predictors (read access for diagnostics).
    #[must_use]
    pub fn predictors(&self) -> &[DynamicPredictor] {
        &self.predictors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::{
        AmbientModel, CaseGenerator, Datacenter, Event, ServerSpec, SimDuration, SimTime,
        TaskProfile, VmSpec,
    };
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    fn stable_model() -> StablePredictor {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(60, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(900)))
            .collect();
        let outcomes = run_experiments(&configs);
        StablePredictor::fit(
            &outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    fn fleet_sim() -> Simulation {
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        for i in 0..3 {
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("v{i}"), 2 + i as u32, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        }
        sim
    }

    #[test]
    fn monitor_scores_forecasts_in_band() {
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        // A mid-run burst on server 0 exercises re-anchoring.
        sim.schedule(
            SimTime::from_secs(600),
            Event::BootVm {
                server: ServerId::new(0),
                spec: VmSpec::new("burst", 4, 8.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..1500 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let fleet = monitor.fleet_mse();
        assert!(fleet.is_finite());
        assert!(fleet < 3.0, "fleet mse {fleet}");
        for i in 0..3 {
            let s = monitor.stats(ServerId::new(i));
            assert!(s.scored > 1000, "server {i} scored only {}", s.scored);
        }
        // The latest forecast exists and is sane.
        let (target, value) = monitor.latest_forecast(ServerId::new(0)).unwrap();
        assert!(target > 1400.0);
        assert!((20.0..90.0).contains(&value));
    }

    #[test]
    fn reanchoring_happens_on_events() {
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        for _ in 0..5 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let before = monitor.predictors()[1]
            .curve_value(Seconds::new(1.0))
            .unwrap();
        // Boot a heavy VM on server 1 → its predictor must re-anchor to a
        // hotter target.
        sim.schedule(
            SimTime::from_secs(6),
            Event::BootVm {
                server: ServerId::new(1),
                spec: VmSpec::new("hog", 8, 16.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..10 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let after = monitor.predictors()[1]
            .curve_value(Seconds::new(2000.0))
            .unwrap();
        assert!(after > before + 2.0, "no re-anchor: {before} -> {after}");
    }

    #[test]
    fn rejects_bad_gap() {
        assert!(matches!(
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 2, Seconds::ZERO),
            Err(PredictError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unmonitored_server_queries_are_safe() {
        let monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 1, Seconds::new(60.0)).unwrap();
        assert!(monitor.latest_forecast(ServerId::new(9)).is_none());
        assert_eq!(monitor.stats(ServerId::new(9)), ServerStats::default());
        assert!(monitor.fleet_mse().is_nan());
    }
}
