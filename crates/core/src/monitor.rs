//! Fleet monitoring: the paper's deployment mode as a reusable component.
//!
//! "Then the model received data collected online and output prediction
//! values" — [`FleetMonitor`] wires one calibrated [`DynamicPredictor`]
//! per server to a running simulation: it consumes sensor samples, watches
//! the event log and **re-anchors automatically** on every reconfiguration
//! (VM boot/stop, migration start/completion) using fresh ψ_stable
//! predictions from the stable model, while scoring each forecast when its
//! target time arrives.

use crate::dynamic::{DynamicConfig, DynamicPredictor};
use crate::error::PredictError;
use crate::predictor::OnlinePredictor;
use crate::stable::StablePredictor;
use std::collections::VecDeque;
use vmtherm_obs::{self as obs, names, ObsEvent};
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_sim::{ServerId, SimEvent, Simulation};
use vmtherm_units::{Celsius, Seconds};

static OBS_REANCHORS: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_REANCHOR_TOTAL);
static OBS_SAMPLES: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_SAMPLES_INGESTED);
static OBS_ISSUED: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_FORECASTS_ISSUED);
static OBS_SCORED: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_FORECASTS_SCORED);
static OBS_ABS_ERR: obs::LazyHistogram = obs::LazyHistogram::new(
    names::METRIC_FORECAST_ABS_ERR_C,
    obs::Histogram::celsius_buckets,
);

/// Forecast errors kept per server for the rolling-MSE drift gauge.
const ROLLING_WINDOW: usize = 128;

/// Per-server drift gauges, registered against the global registry with a
/// `{server="N"}` label when the observability layer is enabled.
#[derive(Debug)]
struct ServerGauges {
    rolling_mse: obs::Gauge,
    gamma_abs: obs::Gauge,
    since_reanchor: obs::Gauge,
    pending: obs::Gauge,
}

impl ServerGauges {
    fn register(server: usize) -> ServerGauges {
        let reg = obs::global();
        ServerGauges {
            rolling_mse: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_ROLLING_MSE,
                server,
            )),
            gamma_abs: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_GAMMA_ABS,
                server,
            )),
            since_reanchor: reg.gauge(&names::server_gauge(
                names::METRIC_MONITOR_SINCE_REANCHOR,
                server,
            )),
            pending: reg.gauge(&names::server_gauge(names::METRIC_MONITOR_PENDING, server)),
        }
    }
}

/// Rolling forecast-accuracy statistics for one server.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerStats {
    /// Matured (scored) forecasts.
    pub scored: usize,
    /// Sum of squared forecast errors.
    pub sum_sq_err: f64,
}

impl ServerStats {
    /// Mean squared forecast error, `NaN` before any forecast matured.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            f64::NAN
        } else {
            self.sum_sq_err / self.scored as f64
        }
    }
}

/// One predictor per server plus pending-forecast bookkeeping.
#[derive(Debug)]
pub struct FleetMonitor {
    stable: StablePredictor,
    gap_secs: f64,
    predictors: Vec<DynamicPredictor>,
    /// Per-server queue of `(target_time, forecast)`.
    pending: Vec<VecDeque<(f64, f64)>>,
    stats: Vec<ServerStats>,
    /// How much of the simulation event log has been consumed.
    log_cursor: usize,
    anchored: bool,
    /// Per-server re-anchor counts (including the initial anchor).
    reanchors: Vec<u64>,
    /// Per-server time (s) of the most recent anchor.
    last_anchor: Vec<f64>,
    /// Per-server window of recent squared forecast errors for the
    /// rolling-MSE gauge.
    recent_sq_err: Vec<VecDeque<f64>>,
    /// Drift gauges; registered lazily once the obs layer is enabled.
    gauges: Vec<ServerGauges>,
}

impl FleetMonitor {
    /// Creates a monitor for `servers` hosts with forecast horizon
    /// `gap_secs`.
    ///
    /// # Errors
    ///
    /// Propagates invalid [`DynamicConfig`]s.
    pub fn new(
        stable: StablePredictor,
        config: DynamicConfig,
        servers: usize,
        gap_secs: Seconds,
    ) -> Result<Self, PredictError> {
        let gap_secs = gap_secs.get();
        if !(gap_secs > 0.0) {
            return Err(PredictError::invalid(
                "gap_secs",
                format!("must be > 0, got {gap_secs}"),
            ));
        }
        let predictors: Result<Vec<_>, _> = (0..servers)
            .map(|_| DynamicPredictor::new(config))
            .collect();
        Ok(FleetMonitor {
            stable,
            gap_secs,
            predictors: predictors?,
            pending: vec![VecDeque::new(); servers],
            stats: vec![ServerStats::default(); servers],
            log_cursor: 0,
            anchored: false,
            reanchors: vec![0; servers],
            last_anchor: vec![0.0; servers],
            recent_sq_err: vec![VecDeque::new(); servers],
            gauges: Vec::new(),
        })
    }

    /// Re-anchors one server's predictor and does the observability
    /// bookkeeping (counter, event record, time-of-anchor).
    fn reanchor(
        &mut self,
        sim: &Simulation,
        sid: ServerId,
        t_secs: f64,
        ambient_c: Celsius,
        reason: &'static str,
    ) {
        let Ok(server) = sim.datacenter().server(sid) else {
            return;
        };
        let snap = ConfigSnapshot::capture(sim, sid, ambient_c);
        let phi0 = server.die_temperature();
        let psi_stable = self.stable.predict(&snap);
        self.apply_anchor(sid.raw(), t_secs, phi0, psi_stable, reason);
    }

    /// Anchors one predictor to an already-computed ψ_stable and records
    /// the bookkeeping shared by the scalar and batch anchor paths.
    fn apply_anchor(
        &mut self,
        idx: usize,
        t_secs: f64,
        phi0: f64,
        psi_stable: f64,
        reason: &'static str,
    ) {
        self.predictors[idx].anchor(
            Seconds::new(t_secs),
            Celsius::new(phi0),
            Celsius::new(psi_stable),
        );
        self.reanchors[idx] += 1;
        self.last_anchor[idx] = t_secs;
        OBS_REANCHORS.inc();
        obs::emit_with(|| ObsEvent::Reanchor {
            t_secs,
            server: idx,
            phi0_c: phi0,
            psi_stable_c: psi_stable,
            reason: reason.to_string(),
        });
    }

    /// Number of monitored servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.predictors.len()
    }

    /// Forecast horizon (s).
    #[must_use]
    pub fn gap_secs(&self) -> f64 {
        self.gap_secs
    }

    /// Consumes the simulation's current state: new events re-anchor the
    /// affected predictors; each server's newest sensor sample feeds
    /// calibration; matured forecasts are scored; one fresh forecast per
    /// server is enqueued. Call once per simulation step (after
    /// `sim.step()`); `ambient_c` is the room temperature used when
    /// capturing configuration snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has more servers than the monitor.
    pub fn observe(&mut self, sim: &Simulation, ambient_c: Celsius) {
        let _span = obs::span(names::SPAN_MONITOR_OBSERVE);
        let n = self.servers();
        assert!(
            sim.datacenter().len() <= n,
            "monitor sized for {n} servers, simulation has {}",
            sim.datacenter().len()
        );
        if obs::enabled() && self.gauges.is_empty() {
            self.gauges = (0..n).map(ServerGauges::register).collect();
        }

        // Initial anchor for every server, once traces exist: one batch
        // ψ_stable prediction over the whole fleet instead of a scalar
        // predict per server.
        if !self.anchored {
            self.anchored = true;
            let t = sim.now().as_secs_f64();
            let snapshots: Vec<ConfigSnapshot> = (0..sim.datacenter().len())
                .map(|idx| ConfigSnapshot::capture(sim, ServerId::new(idx), ambient_c))
                .collect();
            let psi = self.stable.predict_batch(&snapshots);
            for (idx, psi_stable) in psi.into_iter().enumerate() {
                let Ok(server) = sim.datacenter().server(ServerId::new(idx)) else {
                    continue;
                };
                let phi0 = server.die_temperature();
                self.apply_anchor(idx, t, phi0, psi_stable, "initial");
            }
        }

        // Re-anchor on new reconfiguration events.
        while self.log_cursor < sim.log().len() {
            let (at, event) = &sim.log()[self.log_cursor];
            let at = at.as_secs_f64();
            self.log_cursor += 1;
            let touched: Vec<(ServerId, &'static str)> = match event {
                SimEvent::VmBooted { server, .. } => vec![(*server, "vm_boot")],
                SimEvent::VmStopped { server, .. } => vec![(*server, "vm_stop")],
                SimEvent::MigrationStarted { source, dest, .. } => {
                    vec![(*source, "migration_start"), (*dest, "migration_start")]
                }
                SimEvent::MigrationCompleted { source, dest, .. } => {
                    vec![
                        (*source, "migration_complete"),
                        (*dest, "migration_complete"),
                    ]
                }
                _ => vec![],
            };
            for (sid, reason) in touched {
                self.reanchor(sim, sid, at, ambient_c, reason);
            }
        }

        // Feed samples, score matured forecasts, enqueue fresh ones.
        let now = sim.now().as_secs_f64();
        for idx in 0..sim.datacenter().len() {
            let sid = ServerId::new(idx);
            let Ok(trace) = sim.trace(sid) else { continue };
            let Some((t, measured)) = trace.sensor_c.last() else {
                continue;
            };
            self.predictors[idx].observe(Seconds::new(t), Celsius::new(measured));
            OBS_SAMPLES.inc();
            obs::emit_with(|| ObsEvent::Sample {
                t_secs: t,
                server: idx,
                temp_c: measured,
            });
            while let Some(&(target, forecast)) = self.pending[idx].front() {
                if target > now {
                    break;
                }
                self.pending[idx].pop_front();
                let err = measured - forecast;
                self.stats[idx].scored += 1;
                self.stats[idx].sum_sq_err += err * err;
                if self.recent_sq_err[idx].len() >= ROLLING_WINDOW {
                    self.recent_sq_err[idx].pop_front();
                }
                self.recent_sq_err[idx].push_back(err * err);
                OBS_SCORED.inc();
                OBS_ABS_ERR.observe(err.abs());
                obs::emit_with(|| ObsEvent::ForecastScored {
                    t_secs: now,
                    server: idx,
                    err_c: err,
                });
            }
            let forecast =
                self.predictors[idx].predict_ahead(Seconds::new(t), Seconds::new(self.gap_secs));
            if forecast.is_finite() {
                self.pending[idx].push_back((t + self.gap_secs, forecast));
                OBS_ISSUED.inc();
                obs::emit_with(|| ObsEvent::Forecast {
                    t_secs: t,
                    server: idx,
                    target_t_secs: t + self.gap_secs,
                    temp_c: forecast,
                });
            }
            if let Some(gauges) = self.gauges.get(idx) {
                gauges.rolling_mse.set(self.rolling_mse(sid));
                gauges.gamma_abs.set(self.predictors[idx].gamma().abs());
                gauges.since_reanchor.set(now - self.last_anchor[idx]);
                gauges.pending.set(self.pending[idx].len() as f64);
            }
        }
    }

    /// MSE over the most recent [`ROLLING_WINDOW`] scored forecasts for a
    /// server (`NaN` before any matured). While fewer than a full window
    /// have been scored this equals [`ServerStats::mse`].
    #[must_use]
    pub fn rolling_mse(&self, server: ServerId) -> f64 {
        match self.recent_sq_err.get(server.raw()) {
            Some(w) if !w.is_empty() => w.iter().sum::<f64>() / w.len() as f64,
            _ => f64::NAN,
        }
    }

    /// Number of anchor operations performed for a server, including the
    /// initial anchor.
    #[must_use]
    pub fn reanchor_count(&self, server: ServerId) -> u64 {
        self.reanchors.get(server.raw()).copied().unwrap_or(0)
    }

    /// Seconds of simulation time of a server's most recent anchor.
    #[must_use]
    pub fn last_anchor_secs(&self, server: ServerId) -> f64 {
        self.last_anchor.get(server.raw()).copied().unwrap_or(0.0)
    }

    /// Depth of a server's forecast-maturity queue.
    #[must_use]
    pub fn pending_forecasts(&self, server: ServerId) -> usize {
        self.pending.get(server.raw()).map_or(0, VecDeque::len)
    }

    /// The current forecast (`gap_secs` ahead of the latest sample) for a
    /// server, if one is pending.
    #[must_use]
    pub fn latest_forecast(&self, server: ServerId) -> Option<(f64, f64)> {
        self.pending.get(server.raw())?.back().copied()
    }

    /// Per-server accuracy stats.
    #[must_use]
    pub fn stats(&self, server: ServerId) -> ServerStats {
        self.stats.get(server.raw()).copied().unwrap_or_default()
    }

    /// Fleet-wide MSE over all matured forecasts (`NaN` before any).
    #[must_use]
    pub fn fleet_mse(&self) -> f64 {
        let scored: usize = self.stats.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return f64::NAN;
        }
        self.stats.iter().map(|s| s.sum_sq_err).sum::<f64>() / scored as f64
    }

    /// The per-server dynamic predictors (read access for diagnostics).
    #[must_use]
    pub fn predictors(&self) -> &[DynamicPredictor] {
        &self.predictors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::{
        AmbientModel, CaseGenerator, Datacenter, Event, ServerSpec, SimDuration, SimTime,
        TaskProfile, VmSpec,
    };
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    /// Serializes tests that drive `FleetMonitor::observe` so the one test
    /// that enables the global obs registry cannot pollute (or be polluted
    /// by) concurrently running monitors.
    fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn stable_model() -> StablePredictor {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(60, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(900)))
            .collect();
        let outcomes = run_experiments(&configs);
        StablePredictor::fit(
            &outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    fn fleet_sim() -> Simulation {
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        for i in 0..3 {
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("v{i}"), 2 + i as u32, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        }
        sim
    }

    #[test]
    fn monitor_scores_forecasts_in_band() {
        let _guard = obs_test_lock();
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        // A mid-run burst on server 0 exercises re-anchoring.
        sim.schedule(
            SimTime::from_secs(600),
            Event::BootVm {
                server: ServerId::new(0),
                spec: VmSpec::new("burst", 4, 8.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..1500 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let fleet = monitor.fleet_mse();
        assert!(fleet.is_finite());
        assert!(fleet < 3.0, "fleet mse {fleet}");
        for i in 0..3 {
            let s = monitor.stats(ServerId::new(i));
            assert!(s.scored > 1000, "server {i} scored only {}", s.scored);
        }
        // The latest forecast exists and is sane.
        let (target, value) = monitor.latest_forecast(ServerId::new(0)).unwrap();
        assert!(target > 1400.0);
        assert!((20.0..90.0).contains(&value));
    }

    #[test]
    fn reanchoring_happens_on_events() {
        let _guard = obs_test_lock();
        let mut sim = fleet_sim();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(60.0)).unwrap();
        for _ in 0..5 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let before = monitor.predictors()[1]
            .curve_value(Seconds::new(1.0))
            .unwrap();
        // Boot a heavy VM on server 1 → its predictor must re-anchor to a
        // hotter target.
        sim.schedule(
            SimTime::from_secs(6),
            Event::BootVm {
                server: ServerId::new(1),
                spec: VmSpec::new("hog", 8, 16.0, TaskProfile::CpuBound),
            },
        );
        for _ in 0..10 {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        let after = monitor.predictors()[1]
            .curve_value(Seconds::new(2000.0))
            .unwrap();
        assert!(after > before + 2.0, "no re-anchor: {before} -> {after}");
    }

    #[test]
    fn migration_reanchors_once_per_affected_server() {
        let _guard = obs_test_lock();
        let mut dc = Datacenter::new();
        for i in 0..3 {
            dc.add_server(
                ServerSpec::standard(format!("n{i}")),
                Celsius::new(24.0),
                i as u64,
            );
        }
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(24.0), 7);
        let vm = sim
            .boot_vm_now(
                ServerId::new(0),
                VmSpec::new("mover", 2, 4.0, TaskProfile::CpuBound),
            )
            .unwrap();
        let mut monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 3, Seconds::new(5.0)).unwrap();

        vmtherm_obs::set_enabled(true);
        let registry = vmtherm_obs::global();
        let reanchor_total_before = registry.counter(names::METRIC_REANCHOR_TOTAL).get();

        sim.step();
        monitor.observe(&sim, Celsius::new(24.0));
        // First observe anchors every server once, plus one more on server 0
        // for the `VmBooted` event already in the log.
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 2, "server 0");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 1, "server 1");
        assert_eq!(monitor.reanchor_count(ServerId::new(2)), 1, "server 2");

        sim.schedule(
            SimTime::from_secs(6),
            Event::MigrateVm {
                vm,
                dest: ServerId::new(1),
            },
        );
        // Run past MigrationStarted (t=6) but not MigrationCompleted
        // (4 GB at 10 Gbit/s × 1.3 ≈ 4.2 s later).
        while sim.now() < SimTime::from_secs(8) {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::MigrationStarted { .. })));
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 3, "source");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 2, "dest");
        assert_eq!(monitor.reanchor_count(ServerId::new(2)), 1, "bystander");

        // Run past MigrationCompleted and long enough to mature forecasts,
        // but fewer than ROLLING_WINDOW of them so the rolling-MSE gauge
        // must equal the all-time ServerStats MSE.
        while sim.now() < SimTime::from_secs(60) {
            sim.step();
            monitor.observe(&sim, Celsius::new(24.0));
        }
        assert!(sim
            .log()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::MigrationCompleted { .. })));
        assert_eq!(monitor.reanchor_count(ServerId::new(0)), 4, "source done");
        assert_eq!(monitor.reanchor_count(ServerId::new(1)), 3, "dest done");
        assert_eq!(
            monitor.reanchor_count(ServerId::new(2)),
            1,
            "bystander done"
        );

        // The global counter moved by exactly the per-server totals.
        let total: u64 = (0..3)
            .map(|i| monitor.reanchor_count(ServerId::new(i)))
            .sum();
        assert_eq!(
            registry.counter(names::METRIC_REANCHOR_TOTAL).get() - reanchor_total_before,
            total
        );

        // Drift gauges agree with ServerStats and the monitor's own view.
        for i in 0..3 {
            let sid = ServerId::new(i);
            let stats = monitor.stats(sid);
            assert!(
                stats.scored > 0 && (stats.scored as usize) < super::ROLLING_WINDOW,
                "server {i} scored {}",
                stats.scored
            );
            let mse = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_ROLLING_MSE, i))
                .get();
            assert!((mse - stats.mse()).abs() < 1e-12, "server {i} mse gauge");
            assert!((mse - monitor.rolling_mse(sid)).abs() < 1e-12);
            let gamma_abs = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_GAMMA_ABS, i))
                .get();
            assert!(
                (gamma_abs - monitor.predictors()[i].gamma().abs()).abs() < 1e-12,
                "server {i} gamma gauge"
            );
            let since = registry
                .gauge(&names::server_gauge(
                    names::METRIC_MONITOR_SINCE_REANCHOR,
                    i,
                ))
                .get();
            assert!(
                (since - (sim.now().as_secs_f64() - monitor.last_anchor_secs(sid))).abs() < 1e-9,
                "server {i} since-reanchor gauge"
            );
            let pending = registry
                .gauge(&names::server_gauge(names::METRIC_MONITOR_PENDING, i))
                .get();
            assert_eq!(pending as usize, monitor.pending_forecasts(sid));
        }
        vmtherm_obs::set_enabled(false);
    }

    #[test]
    fn rejects_bad_gap() {
        assert!(matches!(
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 2, Seconds::ZERO),
            Err(PredictError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unmonitored_server_queries_are_safe() {
        let monitor =
            FleetMonitor::new(stable_model(), DynamicConfig::new(), 1, Seconds::new(60.0)).unwrap();
        assert!(monitor.latest_forecast(ServerId::new(9)).is_none());
        assert_eq!(monitor.stats(ServerId::new(9)), ServerStats::default());
        assert!(monitor.fleet_mse().is_nan());
    }
}
