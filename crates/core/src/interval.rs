//! Prediction intervals for ψ_stable — split-conformal calibration.
//!
//! The paper reports point predictions; a thermal-management controller
//! acting on them (placement, migration triggers) additionally needs to
//! know *how wrong* a prediction might be. Split conformal prediction
//! gives distribution-free intervals: hold out a calibration set, record
//! the absolute residuals `|ψ_measured − ψ_predicted|`, and for coverage
//! `1 − α` report `prediction ± q`, where `q` is the
//! `⌈(n+1)(1−α)⌉`-th smallest calibration residual. Under exchangeability
//! the interval covers the truth with probability ≥ 1 − α.

use crate::error::PredictError;
use crate::stable::StablePredictor;
use serde::{Deserialize, Serialize};
use vmtherm_sim::experiment::{ConfigSnapshot, ExperimentOutcome};

/// A two-sided prediction interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point prediction (°C).
    pub predicted: f64,
    /// Lower bound (°C).
    pub lower: f64,
    /// Upper bound (°C).
    pub upper: f64,
}

impl Interval {
    /// Whether a measured value falls inside the interval.
    #[must_use]
    pub fn covers(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Interval width (°C).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// A stable predictor wrapped with conformal calibration residuals.
#[derive(Debug, Clone)]
pub struct IntervalPredictor {
    predictor: StablePredictor,
    /// Sorted absolute calibration residuals.
    residuals: Vec<f64>,
}

impl IntervalPredictor {
    /// Calibrates on held-out outcomes (records the model did **not**
    /// train on — otherwise intervals are optimistically narrow).
    ///
    /// # Errors
    ///
    /// [`PredictError::NoTrainingData`] for an empty calibration set.
    pub fn calibrate(
        predictor: StablePredictor,
        calibration: &[ExperimentOutcome],
    ) -> Result<Self, PredictError> {
        if calibration.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let mut residuals: Vec<f64> = calibration
            .iter()
            .map(|o| (o.psi_stable - predictor.predict(&o.snapshot)).abs())
            .collect();
        residuals.sort_by(f64::total_cmp);
        Ok(IntervalPredictor {
            predictor,
            residuals,
        })
    }

    /// Number of calibration residuals.
    #[must_use]
    pub fn calibration_size(&self) -> usize {
        self.residuals.len()
    }

    /// The conformal quantile for coverage `1 − alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn quantile(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let n = self.residuals.len();
        // ⌈(n+1)(1−α)⌉-th smallest, clamped to the largest residual: with
        // small calibration sets the exact rank can exceed n, in which
        // case finite-sample validity needs an infinite bound — we report
        // the max residual instead and callers should calibrate on more
        // data for tight alphas.
        let rank = (((n + 1) as f64) * (1.0 - alpha)).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        self.residuals[idx]
    }

    /// The `1 − alpha` prediction interval for a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn predict_interval(&self, snapshot: &ConfigSnapshot, alpha: f64) -> Interval {
        let predicted = self.predictor.predict(snapshot);
        let q = self.quantile(alpha);
        Interval {
            predicted,
            lower: predicted - q,
            upper: predicted + q,
        }
    }

    /// The wrapped point predictor.
    #[must_use]
    pub fn predictor(&self) -> &StablePredictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::{CaseGenerator, SimDuration};
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    fn campaign(n: usize, gen_seed: u64) -> Vec<ExperimentOutcome> {
        let mut generator = CaseGenerator::new(gen_seed);
        let configs: Vec<_> = generator
            .random_cases(n, gen_seed * 131)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(1000)))
            .collect();
        run_experiments(&configs)
    }

    fn fitted() -> IntervalPredictor {
        let train = campaign(80, 42);
        let calib = campaign(40, 7);
        let model = StablePredictor::fit(
            &train,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap();
        IntervalPredictor::calibrate(model, &calib).unwrap()
    }

    #[test]
    fn intervals_cover_held_out_cases_at_nominal_rate() {
        let ip = fitted();
        let test = campaign(30, 99);
        let alpha = 0.1;
        let covered = test
            .iter()
            .filter(|o| ip.predict_interval(&o.snapshot, alpha).covers(o.psi_stable))
            .count();
        // 90% nominal; allow slack for 30 samples (binomial noise).
        assert!(covered >= 24, "only {covered}/30 covered at nominal 90%");
    }

    #[test]
    fn smaller_alpha_gives_wider_intervals() {
        let ip = fitted();
        let snap = &campaign(1, 5)[0].snapshot;
        let tight = ip.predict_interval(snap, 0.5);
        let wide = ip.predict_interval(snap, 0.05);
        assert!(wide.width() >= tight.width());
        assert!(wide.covers(wide.predicted));
    }

    #[test]
    fn quantile_is_monotone_in_coverage() {
        let ip = fitted();
        let mut prev = 0.0;
        for alpha in [0.5, 0.3, 0.2, 0.1, 0.05] {
            let q = ip.quantile(alpha);
            assert!(q >= prev, "quantile not monotone at alpha={alpha}");
            prev = q;
        }
    }

    #[test]
    fn interval_geometry() {
        let i = Interval {
            predicted: 50.0,
            lower: 48.0,
            upper: 53.0,
        };
        assert!(i.covers(48.0) && i.covers(53.0) && i.covers(50.0));
        assert!(!i.covers(47.9) && !i.covers(53.1));
        assert_eq!(i.width(), 5.0);
    }

    #[test]
    fn empty_calibration_is_an_error() {
        let train = campaign(10, 1);
        let model = StablePredictor::fit(
            &train,
            &TrainingOptions::new().with_params(SvrParams::new()),
        )
        .unwrap();
        assert!(matches!(
            IntervalPredictor::calibrate(model, &[]),
            Err(PredictError::NoTrainingData)
        ));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let ip = fitted();
        let _ = ip.quantile(0.0);
    }
}
