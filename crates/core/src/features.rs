//! Feature encoding of the paper's Eq. (2) input:
//!
//! ```text
//! input = { θ_cpu, θ_memory, θ_fan, ξ_VM, δ_env }
//! ```
//!
//! θ_cpu, θ_memory, θ_fan and δ_env are scalars; ξ_VM ("VM configurations
//! and deployed tasks") needs a fixed-width encoding for the SVM. The
//! [`FeatureEncoding::Full`] layout summarises the VM set with counts,
//! totals and a per-task-type nominal-demand histogram — enough to
//! distinguish "4 cpu-bound VMs" from "4 idle VMs", which is precisely the
//! heterogeneity traditional models miss. Reduced encodings exist for the
//! ablation benchmarks (DESIGN.md §6.3).

use serde::{Deserialize, Serialize};
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_sim::workload::ALL_TASK_PROFILES;

/// How a [`ConfigSnapshot`] becomes a numeric feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FeatureEncoding {
    /// Everything: server scalars, δ_env, VM aggregates, per-task demand
    /// histogram. 14 features.
    #[default]
    Full,
    /// Ablation: ξ_VM reduced to VM count and total vCPUs (no task/shape
    /// detail). 7 features.
    CountOnly,
    /// Ablation: [`FeatureEncoding::Full`] without δ_env. 13 features.
    NoEnvironment,
}

impl FeatureEncoding {
    /// Dimensionality of vectors this encoding produces.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            FeatureEncoding::Full => 8 + ALL_TASK_PROFILES.len(),
            FeatureEncoding::CountOnly => 7,
            FeatureEncoding::NoEnvironment => 7 + ALL_TASK_PROFILES.len(),
        }
    }

    /// Human-readable names of the features, in vector order.
    #[must_use]
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = vec![
            "theta_cpu_core_ghz".to_string(),
            "theta_memory_gb".to_string(),
            "theta_fan_count".to_string(),
            "theta_fan_airflow_cfm".to_string(),
        ];
        if *self != FeatureEncoding::NoEnvironment {
            names.push("delta_env_c".to_string());
        }
        names.push("xi_vm_count".to_string());
        match self {
            FeatureEncoding::CountOnly => {
                names.push("xi_total_vcpus".to_string());
            }
            _ => {
                names.push("xi_total_vcpus".to_string());
                names.push("xi_total_vm_memory_gb".to_string());
                for p in ALL_TASK_PROFILES {
                    names.push(format!("xi_demand_{p}"));
                }
            }
        }
        names
    }

    /// Encodes one snapshot.
    #[must_use]
    pub fn encode(&self, snapshot: &ConfigSnapshot) -> Vec<f64> {
        let mut x = vec![
            snapshot.theta_cpu,
            snapshot.theta_memory_gb,
            snapshot.fan_count as f64,
            snapshot.fan_airflow_cfm,
        ];
        if *self != FeatureEncoding::NoEnvironment {
            x.push(snapshot.ambient_c);
        }
        x.push(snapshot.vms.len() as f64);
        x.push(f64::from(snapshot.total_vcpus()));
        if *self == FeatureEncoding::CountOnly {
            debug_assert_eq!(x.len(), self.dim());
            return x;
        }
        x.push(snapshot.total_vm_memory_gb());
        // Per-task-type expected demand (vCPU units): the heterogeneity
        // signal.
        let mut demand = vec![0.0; ALL_TASK_PROFILES.len()];
        for vm in &snapshot.vms {
            demand[vm.task.index()] += f64::from(vm.vcpus) * vm.task.nominal_cpu();
        }
        x.extend(demand);
        debug_assert_eq!(x.len(), self.dim());
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmtherm_sim::experiment::VmInfo;
    use vmtherm_sim::workload::TaskProfile;

    fn snapshot() -> ConfigSnapshot {
        ConfigSnapshot {
            theta_cpu: 38.4,
            theta_memory_gb: 64.0,
            fan_count: 4,
            fan_airflow_cfm: 144.0,
            vms: vec![
                VmInfo {
                    vcpus: 2,
                    memory_gb: 4.0,
                    task: TaskProfile::CpuBound,
                },
                VmInfo {
                    vcpus: 1,
                    memory_gb: 2.0,
                    task: TaskProfile::Idle,
                },
                VmInfo {
                    vcpus: 4,
                    memory_gb: 8.0,
                    task: TaskProfile::CpuBound,
                },
            ],
            ambient_c: 24.0,
        }
    }

    #[test]
    fn dims_match_encodings() {
        let s = snapshot();
        for e in [
            FeatureEncoding::Full,
            FeatureEncoding::CountOnly,
            FeatureEncoding::NoEnvironment,
        ] {
            assert_eq!(e.encode(&s).len(), e.dim(), "{e:?}");
            assert_eq!(e.feature_names().len(), e.dim(), "{e:?}");
        }
    }

    #[test]
    fn full_encoding_layout() {
        let x = FeatureEncoding::Full.encode(&snapshot());
        assert_eq!(x[0], 38.4); // theta_cpu
        assert_eq!(x[1], 64.0); // theta_memory
        assert_eq!(x[2], 4.0); // fan count
        assert_eq!(x[3], 144.0); // airflow
        assert_eq!(x[4], 24.0); // delta_env
        assert_eq!(x[5], 3.0); // vm count
        assert_eq!(x[6], 7.0); // total vcpus
        assert_eq!(x[7], 14.0); // total vm memory
                                // cpu-bound demand: (2+4)*0.9 = 5.4 at index 7 + 1 + 0.
        assert!((x[8 + TaskProfile::CpuBound.index()] - 5.4).abs() < 1e-12);
        // idle demand: 1*0.03.
        assert!((x[8 + TaskProfile::Idle.index()] - 0.03).abs() < 1e-12);
        // untouched task types are zero.
        assert_eq!(x[8 + TaskProfile::WebServer.index()], 0.0);
    }

    #[test]
    fn no_environment_drops_ambient() {
        let full = FeatureEncoding::Full.encode(&snapshot());
        let noenv = FeatureEncoding::NoEnvironment.encode(&snapshot());
        assert_eq!(noenv.len(), full.len() - 1);
        assert!(!noenv.contains(&24.0));
    }

    #[test]
    fn count_only_hides_heterogeneity() {
        // Two snapshots that differ only in task mix encode identically
        // under CountOnly — the ablation's point.
        let mut hot = snapshot();
        for vm in &mut hot.vms {
            vm.task = TaskProfile::CpuBound;
        }
        let mut cold = snapshot();
        for vm in &mut cold.vms {
            vm.task = TaskProfile::Idle;
        }
        let e = FeatureEncoding::CountOnly;
        assert_eq!(e.encode(&hot), e.encode(&cold));
        let f = FeatureEncoding::Full;
        assert_ne!(f.encode(&hot), f.encode(&cold));
    }

    #[test]
    fn names_align_with_values() {
        let e = FeatureEncoding::Full;
        let names = e.feature_names();
        assert_eq!(names[0], "theta_cpu_core_ghz");
        assert_eq!(names[4], "delta_env_c");
        assert!(names.iter().any(|n| n == "xi_demand_cpu-bound"));
    }

    #[test]
    fn default_is_full() {
        assert_eq!(FeatureEncoding::default(), FeatureEncoding::Full);
    }
}
