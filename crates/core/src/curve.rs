//! The pre-defined temperature curve ψ*(t) — Eq. (3) of the paper.
//!
//! After a reconfiguration at `t = 0` with starting temperature φ(0), the
//! CPU temperature follows a logarithmic approach to the predicted stable
//! value, reaching it at `t_break`:
//!
//! ```text
//!            ⎧ φ(0) + (ψ_stable − φ(0)) · ln(1 + δt) / ln(1 + δ·t_break)   0 ≤ t ≤ t_break
//! ψ*(t)  =   ⎨
//!            ⎩ ψ_stable                                                     t > t_break
//! ```
//!
//! `δ` is a shape parameter (how front-loaded the transient is); the curve
//! is exact at both ends regardless of `δ`. The same formula handles
//! cooling (`φ(0) > ψ_stable`) — the bracket just becomes negative.

use serde::{Deserialize, Serialize};
use vmtherm_units::constants::paper_t_break;
use vmtherm_units::{Celsius, Seconds};

/// The pre-defined warm-up/cool-down curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupCurve {
    phi0: f64,
    psi_stable: f64,
    t_break_secs: f64,
    delta: f64,
}

impl WarmupCurve {
    /// Default shape parameter δ. Chosen so the curve matches the RC
    /// exponential to within ~1 °C over typical 600 s transients.
    pub const DEFAULT_DELTA: f64 = 0.05;

    /// Creates a curve from the pre-transient temperature φ(0), the
    /// predicted stable temperature and the break time.
    ///
    /// # Panics
    ///
    /// Panics if `t_break_secs` or `delta` is non-positive.
    #[must_use]
    pub fn new(phi0: Celsius, psi_stable: Celsius, t_break_secs: Seconds, delta: f64) -> Self {
        assert!(t_break_secs.get() > 0.0, "t_break must be positive");
        assert!(delta > 0.0, "delta must be positive");
        WarmupCurve {
            phi0: phi0.get(),
            psi_stable: psi_stable.get(),
            t_break_secs: t_break_secs.get(),
            delta,
        }
    }

    /// Curve with the paper's `t_break = 600 s` and the default shape.
    #[must_use]
    pub fn standard(phi0: Celsius, psi_stable: Celsius) -> Self {
        WarmupCurve::new(phi0, psi_stable, paper_t_break(), Self::DEFAULT_DELTA)
    }

    /// ψ*(t) for `t` seconds after the anchor. Negative `t` clamps to
    /// φ(0).
    #[must_use]
    pub fn value(&self, t_secs: Seconds) -> f64 {
        let t = t_secs.get();
        if t <= 0.0 {
            return self.phi0;
        }
        if t > self.t_break_secs {
            return self.psi_stable;
        }
        let frac = (1.0 + self.delta * t).ln() / (1.0 + self.delta * self.t_break_secs).ln();
        self.phi0 + (self.psi_stable - self.phi0) * frac
    }

    /// The starting temperature φ(0).
    #[must_use]
    pub fn phi0(&self) -> f64 {
        self.phi0
    }

    /// The stable temperature the curve converges to.
    #[must_use]
    pub fn psi_stable(&self) -> f64 {
        self.psi_stable
    }

    /// The break time (s).
    #[must_use]
    pub fn t_break_secs(&self) -> f64 {
        self.t_break_secs
    }

    /// The shape parameter δ.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn exact_at_endpoints() {
        let curve = WarmupCurve::standard(c(30.0), c(60.0));
        assert_eq!(curve.value(s(0.0)), 30.0);
        assert!((curve.value(s(600.0)) - 60.0).abs() < 1e-12);
        assert_eq!(curve.value(s(601.0)), 60.0);
        assert_eq!(curve.value(s(10_000.0)), 60.0);
    }

    #[test]
    fn negative_time_clamps_to_phi0() {
        let curve = WarmupCurve::standard(c(30.0), c(60.0));
        assert_eq!(curve.value(s(-5.0)), 30.0);
    }

    #[test]
    fn warming_curve_is_monotone_increasing() {
        let curve = WarmupCurve::standard(c(30.0), c(60.0));
        let mut prev = curve.value(s(0.0));
        for t in 1..=600 {
            let v = curve.value(s(t as f64));
            assert!(v >= prev, "not monotone at {t}");
            prev = v;
        }
    }

    #[test]
    fn cooling_curve_is_monotone_decreasing() {
        let curve = WarmupCurve::standard(c(70.0), c(40.0));
        let mut prev = curve.value(s(0.0));
        for t in 1..=600 {
            let v = curve.value(s(t as f64));
            assert!(v <= prev, "not monotone at {t}");
            prev = v;
        }
        assert!((curve.value(s(600.0)) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn log_shape_is_front_loaded() {
        // More than half the rise happens in the first half of t_break.
        let curve = WarmupCurve::standard(c(30.0), c(60.0));
        let half = curve.value(s(300.0));
        assert!(half > 45.0, "midpoint {half} not front-loaded");
    }

    #[test]
    fn larger_delta_is_more_front_loaded() {
        let slow = WarmupCurve::new(c(0.0), c(1.0), s(600.0), 0.01);
        let fast = WarmupCurve::new(c(0.0), c(1.0), s(600.0), 0.5);
        assert!(fast.value(s(60.0)) > slow.value(s(60.0)));
    }

    #[test]
    fn flat_curve_when_already_stable() {
        let curve = WarmupCurve::standard(c(55.0), c(55.0));
        for t in [0.0, 100.0, 600.0, 1e6] {
            assert_eq!(curve.value(s(t)), 55.0);
        }
    }

    #[test]
    fn approximates_rc_exponential() {
        // The paper uses a log curve as a stand-in for the true RC
        // exponential; with the default δ the two agree within ~2 °C over
        // a 30 → 60 °C transient with τ = 130 s.
        let curve = WarmupCurve::standard(c(30.0), c(60.0));
        let tau = 130.0;
        let mut worst: f64 = 0.0;
        for t in (0..=600).step_by(10) {
            let t = t as f64;
            let rc = 60.0 + (30.0 - 60.0) * (-t / tau).exp();
            worst = worst.max((curve.value(s(t)) - rc).abs());
        }
        assert!(worst < 3.0, "max |log − rc| = {worst}");
    }

    #[test]
    #[should_panic(expected = "t_break")]
    fn zero_break_panics() {
        let _ = WarmupCurve::new(c(0.0), c(1.0), s(0.0), 0.05);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn zero_delta_panics() {
        let _ = WarmupCurve::new(c(0.0), c(1.0), s(600.0), 0.0);
    }
}
