//! Dynamic CPU temperature prediction — the paper's second contribution:
//! the pre-defined curve ψ*(t) (Eq. 3) plus run-time calibration γ
//! (Eqs. 4–8), re-anchored whenever the configuration changes.
//!
//! "Cloud computing characteristics result in input features such as
//! server and VM configuration changing at run time" — so the predictor
//! exposes [`DynamicPredictor::anchor`]: at every reconfiguration it asks
//! the stable model for a fresh ψ_stable, starts a new curve from the
//! current measured temperature, and (by default) resets γ per Eq. (4).

use crate::calibration::Calibrator;
use crate::curve::WarmupCurve;
use crate::error::PredictError;
use crate::predictor::OnlinePredictor;
use crate::stable::StablePredictor;
use serde::{Deserialize, Serialize};
use vmtherm_obs::{self as obs, names, ObsEvent};
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_units::constants::{PAPER_DELTA_UPDATE_SECS, PAPER_LAMBDA, PAPER_T_BREAK_SECS};
use vmtherm_units::{Celsius, Seconds};

static OBS_GAMMA_UPDATES: obs::LazyCounter = obs::LazyCounter::new(names::METRIC_GAMMA_UPDATES);
static OBS_CALIBRATION_NS: obs::LazyHistogram = obs::LazyHistogram::new(
    names::METRIC_CALIBRATION_UPDATE_NS,
    obs::Histogram::ns_buckets,
);

/// Tunables of the dynamic predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Calibration learning rate λ (paper: 0.8).
    pub lambda: f64,
    /// Calibration update interval Δ_update in seconds (paper example: 15).
    pub update_interval_secs: f64,
    /// Curve break time in seconds (paper: 600).
    pub t_break_secs: f64,
    /// Curve shape parameter δ.
    pub delta: f64,
    /// Whether an anchor resets γ to 0 (Eq. 4). Keeping γ across anchors
    /// is an ablation variant.
    pub reset_gamma_on_anchor: bool,
    /// Disables calibration entirely (the "without calibration" arm of
    /// Fig. 1(b)).
    pub calibrate: bool,
}

impl DynamicConfig {
    /// Paper defaults.
    #[must_use]
    pub fn new() -> Self {
        DynamicConfig {
            lambda: PAPER_LAMBDA,
            update_interval_secs: PAPER_DELTA_UPDATE_SECS,
            t_break_secs: PAPER_T_BREAK_SECS,
            delta: WarmupCurve::DEFAULT_DELTA,
            reset_gamma_on_anchor: true,
            calibrate: true,
        }
    }

    /// Overrides λ.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Overrides Δ_update.
    #[must_use]
    pub fn with_update_interval(mut self, interval: Seconds) -> Self {
        self.update_interval_secs = interval.get();
        self
    }

    /// Turns calibration off (pre-defined curve only).
    #[must_use]
    pub fn without_calibration(mut self) -> Self {
        self.calibrate = false;
        self
    }

    fn validate(&self) -> Result<(), PredictError> {
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(PredictError::invalid(
                "lambda",
                format!("must be in [0,1], got {}", self.lambda),
            ));
        }
        if !(self.update_interval_secs > 0.0) {
            return Err(PredictError::invalid(
                "update_interval_secs",
                format!("must be > 0, got {}", self.update_interval_secs),
            ));
        }
        if !(self.t_break_secs > 0.0) {
            return Err(PredictError::invalid(
                "t_break_secs",
                format!("must be > 0, got {}", self.t_break_secs),
            ));
        }
        if !(self.delta > 0.0) {
            return Err(PredictError::invalid(
                "delta",
                format!("must be > 0, got {}", self.delta),
            ));
        }
        Ok(())
    }
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The calibrated dynamic temperature predictor.
#[derive(Debug, Clone)]
pub struct DynamicPredictor {
    config: DynamicConfig,
    calibrator: Calibrator,
    /// Anchor time (s) and the curve measured from it.
    anchor: Option<(f64, WarmupCurve)>,
    name: String,
}

impl DynamicPredictor {
    /// Creates an un-anchored predictor.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] for out-of-domain tunables.
    pub fn new(config: DynamicConfig) -> Result<Self, PredictError> {
        config.validate()?;
        let name = if config.calibrate {
            "dynamic-calibrated"
        } else {
            "dynamic-uncalibrated"
        };
        Ok(DynamicPredictor {
            config,
            calibrator: Calibrator::new(config.lambda, Seconds::new(config.update_interval_secs))?,
            anchor: None,
            name: name.to_string(),
        })
    }

    /// Anchors a new curve at `t_secs`: the system sat at `phi0` (current
    /// measurement) and is predicted to stabilise at `psi_stable`.
    pub fn anchor(&mut self, t_secs: Seconds, phi0: Celsius, psi_stable: Celsius) {
        let curve = WarmupCurve::new(
            phi0,
            psi_stable,
            Seconds::new(self.config.t_break_secs),
            self.config.delta,
        );
        self.anchor = Some((t_secs.get(), curve));
        if self.config.reset_gamma_on_anchor {
            self.calibrator.reset();
        }
    }

    /// Convenience: anchor using the stable model's prediction for the
    /// (changed) configuration.
    pub fn anchor_with_model(
        &mut self,
        t_secs: Seconds,
        phi0: Celsius,
        model: &StablePredictor,
        snapshot: &ConfigSnapshot,
    ) {
        self.anchor(t_secs, phi0, Celsius::new(model.predict(snapshot)));
    }

    /// ψ*(t) — the uncalibrated curve value at absolute time `t_secs`.
    ///
    /// # Errors
    ///
    /// [`PredictError::NotReady`] before the first anchor.
    pub fn curve_value(&self, t_secs: Seconds) -> Result<f64, PredictError> {
        let (t0, curve) = self
            .anchor
            .as_ref()
            .ok_or(PredictError::NotReady("no anchor"))?;
        Ok(curve.value(Seconds::new(t_secs.get() - t0)))
    }

    /// Current γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.calibrator.gamma()
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> DynamicConfig {
        self.config
    }

    /// Whether the predictor has been anchored.
    #[must_use]
    pub fn is_anchored(&self) -> bool {
        self.anchor.is_some()
    }
}

impl OnlinePredictor for DynamicPredictor {
    fn observe(&mut self, t_secs: Seconds, measured_c: Celsius) {
        if !self.config.calibrate {
            return;
        }
        if let Ok(curve_value) = self.curve_value(t_secs) {
            let timer = OBS_CALIBRATION_NS.start_timer();
            let updated = self
                .calibrator
                .observe(t_secs, measured_c, Celsius::new(curve_value));
            if updated {
                let _ = timer.stop();
                OBS_GAMMA_UPDATES.inc();
                obs::emit_with(|| ObsEvent::GammaUpdate {
                    t_secs: t_secs.get(),
                    gamma: self.calibrator.gamma(),
                });
            } else {
                // Not due yet: no γ update happened, so don't record a
                // latency sample for it.
                timer.cancel();
            }
        }
    }

    fn predict_ahead(&self, t_secs: Seconds, gap_secs: Seconds) -> f64 {
        match self.curve_value(Seconds::new(t_secs.get() + gap_secs.get())) {
            Ok(v) if self.config.calibrate => self.calibrator.calibrate(v),
            Ok(v) => v,
            // Un-anchored: nothing better than "no rise" — callers anchor
            // before asking in every real flow.
            Err(_) => f64::NAN,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn on_reconfiguration(&mut self, t_secs: Seconds, current_temp_c: Celsius) {
        // Keep the previous stable target if no model consulted: re-anchor
        // from the current temperature toward the same ψ_stable. Callers
        // with a stable model use `anchor_with_model` for a fresh target.
        if let Some((_, curve)) = self.anchor {
            self.anchor(t_secs, current_temp_c, Celsius::new(curve.psi_stable()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    fn predictor(calibrate: bool) -> DynamicPredictor {
        let mut cfg = DynamicConfig::new();
        cfg.calibrate = calibrate;
        DynamicPredictor::new(cfg).unwrap()
    }

    #[test]
    fn unanchored_predicts_nan() {
        let p = predictor(true);
        assert!(p.predict_ahead(s(0.0), s(60.0)).is_nan());
        assert!(matches!(
            p.curve_value(s(0.0)),
            Err(PredictError::NotReady(_))
        ));
    }

    #[test]
    fn follows_curve_exactly_without_noise() {
        // If measurements match the curve exactly, γ stays ~0 and the
        // prediction equals the curve.
        let mut p = predictor(true);
        p.anchor(s(0.0), c(30.0), c(60.0));
        for t in (0..300).step_by(15) {
            let truth = p.curve_value(s(t as f64)).unwrap();
            p.observe(s(t as f64), c(truth));
        }
        assert!(p.gamma().abs() < 1e-9);
        let pred = p.predict_ahead(s(300.0), s(60.0));
        assert!((pred - p.curve_value(s(360.0)).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn calibration_absorbs_systematic_offset() {
        // Real system runs 4 °C above the curve: calibrated predictions
        // converge onto it, uncalibrated stay 4 °C off.
        let mut cal = predictor(true);
        let mut uncal = predictor(false);
        cal.anchor(s(0.0), c(30.0), c(60.0));
        uncal.anchor(s(0.0), c(30.0), c(60.0));
        let offset = 4.0;
        for step in 0..40 {
            let t = step as f64 * 15.0;
            let measured = cal.curve_value(s(t)).unwrap() + offset;
            cal.observe(s(t), c(measured));
            uncal.observe(s(t), c(measured));
        }
        let t = 600.0;
        let actual = 60.0 + offset;
        let cal_err = (cal.predict_ahead(s(t), s(60.0)) - actual).abs();
        let uncal_err = (uncal.predict_ahead(s(t), s(60.0)) - actual).abs();
        assert!(cal_err < 0.1, "calibrated error {cal_err}");
        assert!(
            (uncal_err - offset).abs() < 0.1,
            "uncalibrated error {uncal_err}"
        );
    }

    #[test]
    fn anchor_resets_gamma_by_default() {
        let mut p = predictor(true);
        p.anchor(s(0.0), c(30.0), c(60.0));
        p.observe(s(0.0), c(40.0)); // big dif → γ moves
        assert!(p.gamma().abs() > 1.0);
        p.anchor(s(100.0), c(45.0), c(70.0));
        assert_eq!(p.gamma(), 0.0);
    }

    #[test]
    fn anchor_can_keep_gamma() {
        let mut cfg = DynamicConfig::new();
        cfg.reset_gamma_on_anchor = false;
        let mut p = DynamicPredictor::new(cfg).unwrap();
        p.anchor(s(0.0), c(30.0), c(60.0));
        p.observe(s(0.0), c(40.0));
        let g = p.gamma();
        p.anchor(s(100.0), c(45.0), c(70.0));
        assert_eq!(p.gamma(), g);
    }

    #[test]
    fn reconfiguration_reanchors_from_current_temp() {
        let mut p = predictor(true);
        p.anchor(s(0.0), c(30.0), c(60.0));
        p.on_reconfiguration(s(200.0), c(48.0));
        // New curve starts at 48 at t=200.
        assert!((p.curve_value(s(200.0)).unwrap() - 48.0).abs() < 1e-12);
        // Still heads to the same stable target.
        assert!((p.curve_value(s(200.0 + 600.0)).unwrap() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn gap_semantics_match_eq8() {
        let mut p = predictor(true);
        p.anchor(s(0.0), c(30.0), c(60.0));
        // ψ(t + Δgap) = ψ*(t + Δgap) + γ with γ = 0.
        let lhs = p.predict_ahead(s(100.0), s(50.0));
        let rhs = p.curve_value(s(150.0)).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DynamicPredictor::new(DynamicConfig::new().with_lambda(2.0)).is_err());
        let mut zero_interval = DynamicConfig::new();
        zero_interval.update_interval_secs = 0.0;
        assert!(DynamicPredictor::new(zero_interval).is_err());
        let mut bad = DynamicConfig::new();
        bad.delta = -1.0;
        assert!(DynamicPredictor::new(bad).is_err());
    }

    #[test]
    fn names_distinguish_arms() {
        assert_eq!(predictor(true).name(), "dynamic-calibrated");
        assert_eq!(predictor(false).name(), "dynamic-uncalibrated");
    }
}
