//! Evaluation harness: replays measured series against predictors and
//! computes the paper's MSE metric.
//!
//! Stable prediction is scored per experiment case (Fig. 1(a)); dynamic
//! prediction is scored along a time series with a prediction gap
//! (Fig. 1(b)/(c)): at each sample `t` the predictor (having seen
//! everything up to `t`) forecasts `t + Δ_gap`, and the forecast is
//! compared with the measurement that later arrives at that time.

use crate::predictor::OnlinePredictor;
use crate::stable::StablePredictor;
use vmtherm_sim::experiment::ExperimentOutcome;
use vmtherm_sim::telemetry::TimeSeries;
use vmtherm_sim::time::SimTime;
use vmtherm_svm::metrics;
use vmtherm_units::{Celsius, Seconds};

/// One scored forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// The forecast target time (s).
    pub t_secs: f64,
    /// What the sensor later measured.
    pub actual: f64,
    /// What the predictor forecast at `t − Δ_gap`.
    pub predicted: f64,
}

/// Result of replaying one series against one predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicEvalReport {
    /// Predictor name.
    pub name: String,
    /// Prediction gap used (s).
    pub gap_secs: f64,
    /// All scored forecasts.
    pub points: Vec<EvalPoint>,
    /// Mean squared error over the points.
    pub mse: f64,
    /// Mean absolute error over the points.
    pub mae: f64,
}

/// Replays `series` (assumed evenly sampled) against an online predictor
/// with forecast horizon `gap_secs`.
///
/// Every sample is first offered via [`OnlinePredictor::observe`]; then the
/// predictor forecasts `t + gap`, and the pair is scored once the series
/// reaches that time. NaN forecasts (an un-warmed predictor) are skipped.
///
/// # Panics
///
/// Panics if the series has fewer than two samples or `gap_secs <= 0`.
#[must_use]
pub fn evaluate_online(
    predictor: &mut dyn OnlinePredictor,
    series: &TimeSeries,
    gap_secs: Seconds,
) -> DynamicEvalReport {
    let gap_secs = gap_secs.get();
    assert!(series.len() >= 2, "need at least two samples");
    assert!(gap_secs > 0.0, "gap must be positive");
    let times = series.times();
    let values = series.values();
    let end = *times.last().expect("nonempty");

    let mut points = Vec::new();
    for (i, (&t, &v)) in times.iter().zip(values).enumerate() {
        predictor.observe(Seconds::new(t), Celsius::new(v));
        let target = t + gap_secs;
        if target > end {
            continue;
        }
        let predicted = predictor.predict_ahead(Seconds::new(t), Seconds::new(gap_secs));
        if predicted.is_nan() {
            continue;
        }
        // Actual measurement at (or just after) the target time.
        let actual = lookup_at_or_after(times, values, i, target);
        points.push(EvalPoint {
            t_secs: target,
            actual,
            predicted,
        });
    }
    let (actual, predicted): (Vec<f64>, Vec<f64>) =
        points.iter().map(|p| (p.actual, p.predicted)).unzip();
    let (mse, mae) = if points.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            metrics::mse(&actual, &predicted),
            metrics::mae(&actual, &predicted),
        )
    };
    DynamicEvalReport {
        name: predictor.name().to_string(),
        gap_secs,
        points,
        mse,
        mae,
    }
}

fn lookup_at_or_after(times: &[f64], values: &[f64], from: usize, target: f64) -> f64 {
    let idx = times[from..].partition_point(|t| *t < target - 1e-9) + from;
    values[idx.min(values.len() - 1)]
}

/// A scheduled re-anchor for [`evaluate_dynamic`]: at `t_secs` the
/// configuration changed and the stable model predicts `psi_stable` for
/// the new configuration. φ(0) is taken from the measurement stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorPoint {
    /// When the reconfiguration happened (s).
    pub t_secs: f64,
    /// The stable model's ψ_stable prediction for the new configuration.
    pub psi_stable: f64,
}

impl DynamicEvalReport {
    /// Serialises the scored forecasts as CSV
    /// (`time_s,actual_c,predicted_c`), ready for plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,actual_c,predicted_c\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{}\n", p.t_secs, p.actual, p.predicted));
        }
        out
    }
}

/// Replays a measured series against a [`crate::dynamic::DynamicPredictor`], applying the
/// given anchors as the stream passes them (the first anchor is applied at
/// or before the first sample). This is the full paper pipeline for
/// Fig. 1(b)/(c): stable model supplies ψ_stable at each reconfiguration,
/// the curve re-anchors from the current measurement, calibration runs in
/// between.
///
/// # Panics
///
/// Panics if `anchors` is empty or not sorted by time, if the series has
/// fewer than two samples, or if `gap_secs <= 0`.
#[must_use]
pub fn evaluate_dynamic(
    predictor: &mut crate::dynamic::DynamicPredictor,
    series: &TimeSeries,
    gap_secs: Seconds,
    anchors: &[AnchorPoint],
) -> DynamicEvalReport {
    let _span = vmtherm_obs::span(vmtherm_obs::names::SPAN_DYNAMIC_EVAL);
    let gap_secs = gap_secs.get();
    assert!(!anchors.is_empty(), "need at least one anchor");
    assert!(
        anchors.windows(2).all(|w| w[0].t_secs <= w[1].t_secs),
        "anchors must be sorted by time"
    );
    assert!(series.len() >= 2, "need at least two samples");
    assert!(gap_secs > 0.0, "gap must be positive");

    let times = series.times();
    let values = series.values();
    let end = *times.last().expect("nonempty");
    let mut next_anchor = 0usize;
    let mut points = Vec::new();

    for (i, (&t, &v)) in times.iter().zip(values).enumerate() {
        while next_anchor < anchors.len() && anchors[next_anchor].t_secs <= t + 1e-9 {
            predictor.anchor(
                Seconds::new(t),
                Celsius::new(v),
                Celsius::new(anchors[next_anchor].psi_stable),
            );
            next_anchor += 1;
        }
        use crate::predictor::OnlinePredictor as _;
        predictor.observe(Seconds::new(t), Celsius::new(v));
        let target = t + gap_secs;
        if target > end {
            continue;
        }
        let predicted = predictor.predict_ahead(Seconds::new(t), Seconds::new(gap_secs));
        if predicted.is_nan() {
            continue;
        }
        let actual = lookup_at_or_after(times, values, i, target);
        points.push(EvalPoint {
            t_secs: target,
            actual,
            predicted,
        });
    }

    let (actual, predicted): (Vec<f64>, Vec<f64>) =
        points.iter().map(|p| (p.actual, p.predicted)).unzip();
    let (mse, mae) = if points.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            metrics::mse(&actual, &predicted),
            metrics::mae(&actual, &predicted),
        )
    };
    DynamicEvalReport {
        name: {
            use crate::predictor::OnlinePredictor as _;
            predictor.name().to_string()
        },
        gap_secs,
        points,
        mse,
        mae,
    }
}

/// Result of scoring a stable predictor on held-out cases — the Fig. 1(a)
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct StableEvalReport {
    /// `(case index, measured ψ_stable, predicted ψ_stable)` rows.
    pub cases: Vec<(usize, f64, f64)>,
    /// Mean squared error across cases.
    pub mse: f64,
    /// Mean absolute error across cases.
    pub mae: f64,
    /// Largest absolute error.
    pub max_error: f64,
}

impl StableEvalReport {
    /// Serialises the per-case rows as CSV
    /// (`case,measured_c,predicted_c,error_c`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("case,measured_c,predicted_c,error_c\n");
        for (i, measured, predicted) in &self.cases {
            out.push_str(&format!(
                "{i},{measured},{predicted},{}\n",
                predicted - measured
            ));
        }
        out
    }
}

/// Scores a trained stable predictor on test outcomes.
///
/// # Panics
///
/// Panics on an empty test set.
#[must_use]
pub fn evaluate_stable(
    predictor: &StablePredictor,
    test: &[ExperimentOutcome],
) -> StableEvalReport {
    assert!(!test.is_empty(), "empty test set");
    let snapshots: Vec<_> = test.iter().map(|o| o.snapshot.clone()).collect();
    let predicted = predictor.predict_batch(&snapshots);
    let cases: Vec<_> = test
        .iter()
        .zip(predicted)
        .enumerate()
        .map(|(i, (o, p))| (i, o.psi_stable, p))
        .collect();
    let actual: Vec<f64> = cases.iter().map(|c| c.1).collect();
    let predicted: Vec<f64> = cases.iter().map(|c| c.2).collect();
    StableEvalReport {
        cases,
        mse: metrics::mse(&actual, &predicted),
        mae: metrics::mae(&actual, &predicted),
        max_error: metrics::max_error(&actual, &predicted),
    }
}

/// The ψ_stable of Eq. (1) for an arbitrary series and break time —
/// re-exported here so downstream code computes it one way only.
#[must_use]
pub fn psi_stable(series: &TimeSeries, t_break: SimTime) -> Option<f64> {
    series.mean_after(t_break)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::LastValuePredictor;

    fn ramp_series(n: usize) -> TimeSeries {
        (0..n).map(|i| (i as f64, 30.0 + i as f64 * 0.1)).collect()
    }

    #[test]
    fn last_value_on_ramp_has_known_error() {
        // Ramp rises 0.1/s; last-value with gap 10 is always 1.0 low.
        let series = ramp_series(100);
        let mut p = LastValuePredictor::new();
        let report = evaluate_online(&mut p, &series, Seconds::new(10.0));
        assert!(!report.points.is_empty());
        assert!((report.mse - 1.0).abs() < 1e-9, "mse = {}", report.mse);
        assert!((report.mae - 1.0).abs() < 1e-9);
        assert_eq!(report.name, "last-value");
    }

    #[test]
    fn perfect_predictor_scores_zero() {
        struct Oracle;
        impl OnlinePredictor for Oracle {
            fn observe(&mut self, _t: Seconds, _m: Celsius) {}
            fn predict_ahead(&self, t: Seconds, gap: Seconds) -> f64 {
                30.0 + (t.get() + gap.get()) * 0.1
            }
            fn name(&self) -> &str {
                "oracle"
            }
        }
        let report = evaluate_online(&mut Oracle, &ramp_series(50), Seconds::new(5.0));
        assert!(report.mse < 1e-18);
    }

    #[test]
    fn forecasts_beyond_series_end_are_skipped() {
        let series = ramp_series(20);
        let mut p = LastValuePredictor::new();
        let report = evaluate_online(&mut p, &series, Seconds::new(5.0));
        // Targets range 5..=19: 15 scored points (t = 0..=14).
        assert_eq!(report.points.len(), 15);
        assert!(report.points.iter().all(|pt| pt.t_secs <= 19.0));
    }

    #[test]
    fn nan_warmup_skipped() {
        // LastValue predicts NaN before its first observation — but since
        // observe precedes predict in the loop, every point is valid; use
        // a predictor that stays NaN for a while instead.
        struct SlowStart {
            seen: usize,
        }
        impl OnlinePredictor for SlowStart {
            fn observe(&mut self, _t: Seconds, _m: Celsius) {
                self.seen += 1;
            }
            fn predict_ahead(&self, _t: Seconds, _gap: Seconds) -> f64 {
                if self.seen < 10 {
                    f64::NAN
                } else {
                    42.0
                }
            }
            fn name(&self) -> &str {
                "slow"
            }
        }
        let report = evaluate_online(
            &mut SlowStart { seen: 0 },
            &ramp_series(30),
            Seconds::new(5.0),
        );
        assert_eq!(report.points.len(), 30 - 5 - 9);
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn zero_gap_panics() {
        let mut p = LastValuePredictor::new();
        let _ = evaluate_online(&mut p, &ramp_series(10), Seconds::ZERO);
    }

    #[test]
    fn evaluate_dynamic_tracks_two_phase_scenario() {
        use crate::dynamic::{DynamicConfig, DynamicPredictor};
        // Phase 1: warm from 30 toward 50; phase 2 (t >= 300): toward 60.
        // Build the "measured" series from the same curve family the
        // predictor uses, so a correctly-anchored predictor scores ~0.
        let c1 = crate::curve::WarmupCurve::standard(Celsius::new(30.0), Celsius::new(50.0));
        let c2 = crate::curve::WarmupCurve::standard(
            Celsius::new(c1.value(Seconds::new(300.0))),
            Celsius::new(60.0),
        );
        let series: TimeSeries = (0..900)
            .map(|s| {
                let t = s as f64;
                let v = if t < 300.0 {
                    c1.value(Seconds::new(t))
                } else {
                    c2.value(Seconds::new(t - 300.0))
                };
                (t, v)
            })
            .collect();
        let anchors = [
            AnchorPoint {
                t_secs: 0.0,
                psi_stable: 50.0,
            },
            AnchorPoint {
                t_secs: 300.0,
                psi_stable: 60.0,
            },
        ];
        let mut p = DynamicPredictor::new(DynamicConfig::new()).unwrap();
        let report = evaluate_dynamic(&mut p, &series, Seconds::new(60.0), &anchors);
        // Residual error comes only from forecasts issued just before the
        // (unannounced) phase change at t = 300.
        assert!(report.mse < 1.0, "mse = {}", report.mse);
        // Without the second anchor the predictor misses the phase change.
        let mut p2 = DynamicPredictor::new(DynamicConfig::new().without_calibration()).unwrap();
        let report2 = evaluate_dynamic(&mut p2, &series, Seconds::new(60.0), &anchors[..1]);
        assert!(
            report2.mse > report.mse,
            "{} vs {}",
            report2.mse,
            report.mse
        );
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn evaluate_dynamic_needs_anchor() {
        use crate::dynamic::{DynamicConfig, DynamicPredictor};
        let mut p = DynamicPredictor::new(DynamicConfig::new()).unwrap();
        let _ = evaluate_dynamic(&mut p, &ramp_series(10), Seconds::new(5.0), &[]);
    }

    #[test]
    fn report_csv_round_numbers() {
        let report = DynamicEvalReport {
            name: "x".into(),
            gap_secs: 60.0,
            points: vec![EvalPoint {
                t_secs: 60.0,
                actual: 40.0,
                predicted: 41.5,
            }],
            mse: 2.25,
            mae: 1.5,
        };
        assert_eq!(report.to_csv(), "time_s,actual_c,predicted_c\n60,40,41.5\n");
        let stable = StableEvalReport {
            cases: vec![(0, 50.0, 51.0)],
            mse: 1.0,
            mae: 1.0,
            max_error: 1.0,
        };
        assert_eq!(
            stable.to_csv(),
            "case,measured_c,predicted_c,error_c\n0,50,51,1\n"
        );
    }

    #[test]
    fn psi_stable_matches_series_mean() {
        let series = ramp_series(100);
        let v = psi_stable(&series, SimTime::from_secs(90)).unwrap();
        // samples 90..=99 → values 39.0..39.9, mean 39.45.
        assert!((v - 39.45).abs() < 1e-9);
    }
}
