//! Run-time calibration γ — Eqs. (4)–(8) of the paper.
//!
//! The pre-defined curve ψ*(t) is coarse; online, the predictor observes
//! the real sensor every Δ_update seconds and accumulates a correction:
//!
//! ```text
//! dif = φ(t) − (ψ*(t) + γ)          (Eq. 5: error of the last prediction)
//! γ  ← γ + λ · dif                  (Eq. 6: learning-rate update, λ = 0.8)
//! ψ(t + Δ_gap) = ψ*(t + Δ_gap) + γ  (Eq. 8: calibrated prediction)
//! ```
//!
//! At an anchor (t = 0) γ starts at 0 (Eq. 4).

use crate::error::PredictError;
use serde::{Deserialize, Serialize};
use vmtherm_units::constants::{paper_delta_update, PAPER_LAMBDA};
use vmtherm_units::{Celsius, Seconds};

/// The γ accumulator with its λ and Δ_update bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    gamma: f64,
    lambda: f64,
    update_interval_secs: f64,
    last_update_secs: Option<f64>,
    updates: u64,
}

impl Calibrator {
    /// Creates a calibrator with γ = 0.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] unless `0 ≤ lambda ≤ 1` and
    /// `update_interval_secs > 0`.
    pub fn new(lambda: f64, update_interval_secs: Seconds) -> Result<Self, PredictError> {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(PredictError::invalid(
                "lambda",
                format!("lambda must be in [0, 1], got {lambda}"),
            ));
        }
        if !(update_interval_secs.get() > 0.0) {
            return Err(PredictError::invalid(
                "update_interval_secs",
                format!(
                    "update interval must be positive, got {}",
                    update_interval_secs.get()
                ),
            ));
        }
        Ok(Calibrator::unchecked(lambda, update_interval_secs.get()))
    }

    /// Constructs without validating; for parameters already known to be
    /// in-domain (the paper constants).
    fn unchecked(lambda: f64, update_interval_secs: f64) -> Self {
        Calibrator {
            gamma: 0.0,
            lambda,
            update_interval_secs,
            last_update_secs: None,
            updates: 0,
        }
    }

    /// Paper defaults: λ = 0.8, Δ_update = 15 s.
    #[must_use]
    pub fn standard() -> Self {
        Calibrator::unchecked(PAPER_LAMBDA, paper_delta_update().get())
    }

    /// Current calibration γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The learning rate λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The update interval Δ_update (s).
    #[must_use]
    pub fn update_interval_secs(&self) -> f64 {
        self.update_interval_secs
    }

    /// Number of γ updates applied so far.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Resets to the Eq. (4) state (γ = 0, no update history) — done at
    /// every re-anchor.
    pub fn reset(&mut self) {
        self.gamma = 0.0;
        self.last_update_secs = None;
        self.updates = 0;
    }

    /// Offers a measurement. `curve_value` is ψ*(t) (uncalibrated); the
    /// calibrated prediction it is compared against is `ψ*(t) + γ`
    /// (Eq. 5). γ updates only when Δ_update has elapsed since the last
    /// update (the first offer always updates). Returns `true` when γ
    /// changed.
    pub fn observe(&mut self, t_secs: Seconds, measured: Celsius, curve_value: Celsius) -> bool {
        let t = t_secs.get();
        let due = match self.last_update_secs {
            None => true,
            Some(last) => t - last >= self.update_interval_secs - 1e-9,
        };
        if !due {
            return false;
        }
        let dif = measured.get() - (curve_value.get() + self.gamma);
        self.gamma += self.lambda * dif;
        self.last_update_secs = Some(t);
        self.updates += 1;
        true
    }

    /// Applies γ to an uncalibrated curve value (Eq. 8's right-hand side).
    #[must_use]
    pub fn calibrate(&self, curve_value: f64) -> f64 {
        curve_value + self.gamma
    }
}

impl Default for Calibrator {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Celsius {
        Celsius::new(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn starts_at_zero() {
        let cal = Calibrator::standard();
        assert_eq!(cal.gamma(), 0.0);
        assert_eq!(cal.calibrate(42.0), 42.0);
    }

    #[test]
    fn paper_worked_example() {
        // Paper §II: at t=15, φ(15) − ψ*(15) = dif, γ = λ·dif with γ
        // previously 0.
        let mut cal = Calibrator::new(0.8, s(15.0)).expect("calibrator");
        // Suppose ψ*(15) = 50 and we measure 52: dif = 2, γ = 1.6.
        assert!(cal.observe(s(15.0), c(52.0), c(50.0)));
        assert!((cal.gamma() - 1.6).abs() < 1e-12);
        // Prediction for t=75 with ψ*(75)=55: 55 + 1.6 = 56.6 (Eq. 7).
        assert!((cal.calibrate(55.0) - 56.6).abs() < 1e-12);
    }

    #[test]
    fn respects_update_interval() {
        let mut cal = Calibrator::new(0.8, s(15.0)).expect("calibrator");
        assert!(cal.observe(s(0.0), c(51.0), c(50.0)));
        let g = cal.gamma();
        // 10 s later: not due.
        assert!(!cal.observe(s(10.0), c(60.0), c(50.0)));
        assert_eq!(cal.gamma(), g);
        // 15 s after last update: due.
        assert!(cal.observe(s(15.0), c(60.0), c(50.0)));
        assert_ne!(cal.gamma(), g);
        assert_eq!(cal.updates(), 2);
    }

    #[test]
    fn converges_to_constant_offset() {
        // If the real system sits exactly k above the curve, γ → k.
        let mut cal = Calibrator::new(0.8, s(15.0)).expect("calibrator");
        let k = 3.0;
        for step in 0..20 {
            let t = step as f64 * 15.0;
            cal.observe(s(t), c(50.0 + k), c(50.0));
        }
        assert!((cal.gamma() - k).abs() < 1e-6, "gamma = {}", cal.gamma());
    }

    #[test]
    fn lambda_zero_never_learns() {
        let mut cal = Calibrator::new(0.0, s(15.0)).expect("calibrator");
        cal.observe(s(0.0), c(99.0), c(50.0));
        cal.observe(s(15.0), c(99.0), c(50.0));
        assert_eq!(cal.gamma(), 0.0);
    }

    #[test]
    fn lambda_one_jumps_immediately() {
        let mut cal = Calibrator::new(1.0, s(15.0)).expect("calibrator");
        cal.observe(s(0.0), c(57.0), c(50.0));
        assert_eq!(cal.gamma(), 7.0);
    }

    #[test]
    fn reset_restores_eq4_state() {
        let mut cal = Calibrator::standard();
        cal.observe(s(0.0), c(60.0), c(50.0));
        assert_ne!(cal.gamma(), 0.0);
        cal.reset();
        assert_eq!(cal.gamma(), 0.0);
        assert_eq!(cal.updates(), 0);
        // First observe after reset updates immediately again.
        assert!(cal.observe(s(100.0), c(60.0), c(50.0)));
    }

    #[test]
    fn error_relative_to_calibrated_prediction() {
        // Eq. 5 compares against ψ* + γ, not raw ψ*: once γ has absorbed
        // the offset, a matching measurement must not move γ.
        let mut cal = Calibrator::new(1.0, s(15.0)).expect("calibrator");
        cal.observe(s(0.0), c(53.0), c(50.0)); // γ = 3
        assert!(cal.observe(s(15.0), c(53.0), c(50.0)));
        assert!(
            (cal.gamma() - 3.0).abs() < 1e-12,
            "gamma drifted: {}",
            cal.gamma()
        );
    }

    #[test]
    fn bad_lambda_rejected() {
        assert!(matches!(
            Calibrator::new(1.5, s(15.0)),
            Err(PredictError::InvalidConfig { .. })
        ));
        assert!(Calibrator::new(-0.1, s(15.0)).is_err());
        assert!(Calibrator::new(f64::NAN, s(15.0)).is_err());
    }

    #[test]
    fn bad_interval_rejected() {
        assert!(matches!(
            Calibrator::new(0.5, s(0.0)),
            Err(PredictError::InvalidConfig { .. })
        ));
        assert!(Calibrator::new(0.5, s(-5.0)).is_err());
    }
}
