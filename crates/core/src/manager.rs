//! Thermal management on top of the predictions — the paper's motivating
//! application ("temperature prediction is a fundamental technique to
//! conduct thermal management proactively").
//!
//! Three tools:
//!
//! - [`PlacementAdvisor`] — given candidate placements of a new VM, predict
//!   each host's resulting ψ_stable and pick the coolest (hotspot
//!   avoidance, minimising temperature disparity).
//! - [`HotspotClassifier`] — an SVC over the same Eq. (2) features that
//!   flags configurations whose stable temperature would exceed a
//!   threshold.
//! - [`MigrationAdvisor`] — find a predicted-hot host and propose moving
//!   its largest VM to the predicted-coolest host with room.

use crate::error::PredictError;
use crate::features::FeatureEncoding;
use crate::stable::StablePredictor;
use vmtherm_sim::experiment::{ConfigSnapshot, ExperimentOutcome, VmInfo};
use vmtherm_svm::data::Dataset;
use vmtherm_svm::kernel::Kernel;
use vmtherm_svm::scale::{ScaleMethod, Scaler};
use vmtherm_svm::svc::{SvcModel, SvcParams};
use vmtherm_units::Celsius;

/// Returns a copy of `snapshot` with `vm` added — the hypothetical
/// configuration a placement decision evaluates.
#[must_use]
pub fn snapshot_with_vm(snapshot: &ConfigSnapshot, vm: &VmInfo) -> ConfigSnapshot {
    let mut s = snapshot.clone();
    s.vms.push(vm.clone());
    s
}

/// Ranks candidate hosts for a new VM by predicted stable temperature.
#[derive(Debug, Clone)]
pub struct PlacementAdvisor {
    predictor: StablePredictor,
}

impl PlacementAdvisor {
    /// Wraps a trained stable predictor.
    #[must_use]
    pub fn new(predictor: StablePredictor) -> Self {
        PlacementAdvisor { predictor }
    }

    /// Predicted ψ_stable of each candidate host *after* receiving `vm`,
    /// in candidate order. All hypothetical placements are scored in one
    /// batch prediction.
    #[must_use]
    pub fn score(&self, candidates: &[ConfigSnapshot], vm: &VmInfo) -> Vec<f64> {
        let hypothetical: Vec<ConfigSnapshot> =
            candidates.iter().map(|c| snapshot_with_vm(c, vm)).collect();
        self.predictor.predict_batch(&hypothetical)
    }

    /// The candidate index with the lowest predicted post-placement
    /// temperature, with that prediction. `None` for no candidates.
    #[must_use]
    pub fn best(&self, candidates: &[ConfigSnapshot], vm: &VmInfo) -> Option<(usize, f64)> {
        self.score(candidates, vm)
            .into_iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn predictor(&self) -> &StablePredictor {
        &self.predictor
    }
}

/// Binary hotspot risk classifier: will this configuration stabilise above
/// the threshold?
#[derive(Debug, Clone)]
pub struct HotspotClassifier {
    encoding: FeatureEncoding,
    scaler: Scaler,
    model: SvcModel,
    threshold_c: f64,
}

impl HotspotClassifier {
    /// Trains from experiment outcomes, labelling records by whether
    /// ψ_stable exceeded `threshold_c`.
    ///
    /// # Errors
    ///
    /// [`PredictError::NoTrainingData`] for no records or single-class
    /// data (a threshold no record crosses), SVM errors otherwise.
    pub fn fit(
        outcomes: &[ExperimentOutcome],
        encoding: FeatureEncoding,
        threshold_c: Celsius,
    ) -> Result<Self, PredictError> {
        if outcomes.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let mut raw = Dataset::new(encoding.dim());
        for o in outcomes {
            let label = if o.psi_stable > threshold_c.get() {
                1.0
            } else {
                -1.0
            };
            raw.push(encoding.encode(&o.snapshot), label);
        }
        let positives = raw.targets().iter().filter(|t| **t > 0.0).count();
        if positives == 0 || positives == raw.len() {
            return Err(PredictError::NoTrainingData);
        }
        let scaler = Scaler::fit(&raw, ScaleMethod::MinMax);
        let scaled = scaler.transform_dataset(&raw);
        let model = SvcModel::train(
            &scaled,
            SvcParams::new().with_c(32.0).with_kernel(Kernel::rbf(0.05)),
        )?;
        Ok(HotspotClassifier {
            encoding,
            scaler,
            model,
            threshold_c: threshold_c.get(),
        })
    }

    /// `true` when the configuration is predicted to exceed the threshold.
    #[must_use]
    pub fn is_hotspot(&self, snapshot: &ConfigSnapshot) -> bool {
        let x = self.scaler.transform(&self.encoding.encode(snapshot));
        self.model.classify(&x).is_ok_and(|label| label > 0.0)
    }

    /// The decision threshold (°C).
    #[must_use]
    pub fn threshold_c(&self) -> f64 {
        self.threshold_c
    }
}

/// A proposed migration: move VM `vm_index` of host `from` to host `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationAdvice {
    /// Index of the source host in the candidate slice.
    pub from: usize,
    /// Index of the VM within the source host's snapshot.
    pub vm_index: usize,
    /// Index of the destination host.
    pub to: usize,
}

/// Proposes migrations away from predicted hotspots.
#[derive(Debug, Clone)]
pub struct MigrationAdvisor {
    predictor: StablePredictor,
    /// Act when a host's predicted ψ_stable exceeds this (°C).
    threshold_c: f64,
    /// Installed memory per host (GB), for destination feasibility.
    host_memory_gb: f64,
}

impl MigrationAdvisor {
    /// Creates an advisor.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive host memory.
    #[must_use]
    pub fn new(predictor: StablePredictor, threshold_c: Celsius, host_memory_gb: f64) -> Self {
        assert!(host_memory_gb > 0.0, "host memory must be positive");
        MigrationAdvisor {
            predictor,
            threshold_c: threshold_c.get(),
            host_memory_gb,
        }
    }

    /// Examines the fleet and proposes at most one migration: from the
    /// hottest host predicted above threshold, move its largest-demand VM
    /// to the host whose *post-migration* prediction is lowest (and that
    /// has memory room). Returns `None` when no host is predicted hot, the
    /// hot host has no VMs, no destination fits, or no move actually
    /// lowers the hot host's prediction below every alternative.
    #[must_use]
    pub fn advise(&self, hosts: &[ConfigSnapshot]) -> Option<MigrationAdvice> {
        let scores = self.predictor.predict_batch(hosts);
        let (from, from_score) = scores
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if from_score <= self.threshold_c {
            return None;
        }
        // Largest expected-demand VM on the hot host.
        let (vm_index, vm) = hosts[from].vms.iter().enumerate().max_by(|a, b| {
            let da = f64::from(a.1.vcpus) * a.1.task.nominal_cpu();
            let db = f64::from(b.1.vcpus) * b.1.task.nominal_cpu();
            da.total_cmp(&db)
        })?;
        // Best feasible destination by post-migration prediction: gather
        // the feasible hypothetical placements, score them in one batch.
        let mut feasible: Vec<usize> = Vec::new();
        let mut hypothetical: Vec<ConfigSnapshot> = Vec::new();
        for (i, host) in hosts.iter().enumerate() {
            if i == from {
                continue;
            }
            let used: f64 = host.vms.iter().map(|v| v.memory_gb).sum();
            if used + vm.memory_gb > self.host_memory_gb {
                continue;
            }
            feasible.push(i);
            hypothetical.push(snapshot_with_vm(host, vm));
        }
        let posts = self.predictor.predict_batch(&hypothetical);
        let (to, post_dest) = feasible
            .into_iter()
            .zip(posts)
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        // Only advise if the move does not just relocate the hotspot.
        if post_dest >= from_score {
            return None;
        }
        Some(MigrationAdvice { from, vm_index, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::TrainingOptions;
    use vmtherm_sim::workload::TaskProfile;
    use vmtherm_sim::{CaseGenerator, SimDuration};
    use vmtherm_svm::svr::SvrParams;

    fn trained_predictor() -> StablePredictor {
        let mut gen = CaseGenerator::new(21);
        let configs: Vec<_> = gen
            .random_cases(50, 500)
            .into_iter()
            .map(|c| {
                c.with_duration(SimDuration::from_secs(800))
                    .with_t_break(SimDuration::from_secs(550))
            })
            .collect();
        let outcomes = crate::stable::run_experiments(&configs);
        let opts = TrainingOptions::new()
            .with_params(SvrParams::new().with_c(64.0).with_kernel(Kernel::rbf(0.02)));
        StablePredictor::fit(&outcomes, &opts).unwrap()
    }

    fn host(vm_tasks: &[(TaskProfile, u32)], ambient: f64) -> ConfigSnapshot {
        ConfigSnapshot {
            theta_cpu: 38.4,
            theta_memory_gb: 64.0,
            fan_count: 4,
            fan_airflow_cfm: 144.0,
            vms: vm_tasks
                .iter()
                .map(|(t, v)| VmInfo {
                    vcpus: *v,
                    memory_gb: 4.0,
                    task: *t,
                })
                .collect(),
            ambient_c: ambient,
        }
    }

    #[test]
    fn snapshot_with_vm_appends() {
        let h = host(&[(TaskProfile::Idle, 1)], 24.0);
        let vm = VmInfo {
            vcpus: 2,
            memory_gb: 4.0,
            task: TaskProfile::CpuBound,
        };
        let h2 = snapshot_with_vm(&h, &vm);
        assert_eq!(h2.vms.len(), 2);
        assert_eq!(h.vms.len(), 1);
    }

    #[test]
    fn placement_prefers_cooler_host() {
        let p = PlacementAdvisor::new(trained_predictor());
        let hot = host(&[(TaskProfile::CpuBound, 4); 6], 26.0);
        let cool = host(&[(TaskProfile::Idle, 1); 2], 22.0);
        let vm = VmInfo {
            vcpus: 2,
            memory_gb: 4.0,
            task: TaskProfile::Mixed,
        };
        let (best, temp) = p.best(&[hot, cool], &vm).unwrap();
        assert_eq!(best, 1, "picked the hot host (pred {temp})");
    }

    #[test]
    fn placement_empty_candidates() {
        let p = PlacementAdvisor::new(trained_predictor());
        let vm = VmInfo {
            vcpus: 1,
            memory_gb: 2.0,
            task: TaskProfile::Idle,
        };
        assert!(p.best(&[], &vm).is_none());
    }

    #[test]
    fn hotspot_classifier_separates_extremes() {
        let mut gen = CaseGenerator::new(33);
        let configs: Vec<_> = gen
            .random_cases(60, 900)
            .into_iter()
            .map(|c| {
                c.with_duration(SimDuration::from_secs(800))
                    .with_t_break(SimDuration::from_secs(550))
            })
            .collect();
        let outcomes = crate::stable::run_experiments(&configs);
        // Pick a threshold near the median so both classes exist.
        let mut temps: Vec<f64> = outcomes.iter().map(|o| o.psi_stable).collect();
        temps.sort_by(f64::total_cmp);
        let threshold = temps[temps.len() / 2];
        let clf = HotspotClassifier::fit(&outcomes, FeatureEncoding::Full, Celsius::new(threshold))
            .unwrap();
        assert_eq!(clf.threshold_c(), threshold);
        let hot = host(&[(TaskProfile::CpuBound, 4); 8], 28.0);
        let cool = host(&[(TaskProfile::Idle, 1); 2], 18.0);
        assert!(clf.is_hotspot(&hot));
        assert!(!clf.is_hotspot(&cool));
    }

    #[test]
    fn hotspot_single_class_is_error() {
        let mut gen = CaseGenerator::new(3);
        let configs: Vec<_> = gen
            .random_cases(5, 100)
            .into_iter()
            .map(|c| {
                c.with_duration(SimDuration::from_secs(700))
                    .with_t_break(SimDuration::from_secs(600))
            })
            .collect();
        let outcomes = crate::stable::run_experiments(&configs);
        assert!(matches!(
            HotspotClassifier::fit(&outcomes, FeatureEncoding::Full, Celsius::new(500.0)),
            Err(PredictError::NoTrainingData)
        ));
    }

    #[test]
    fn migration_advisor_moves_from_hot_to_cool() {
        let p = trained_predictor();
        let hot = host(&[(TaskProfile::CpuBound, 4); 8], 27.0);
        let cool = host(&[(TaskProfile::Idle, 1)], 21.0);
        let hot_pred = p.predict(&hot);
        let advisor = MigrationAdvisor::new(p, Celsius::new(hot_pred - 1.0), 64.0);
        let advice = advisor.advise(&[hot, cool]).expect("advice expected");
        assert_eq!(advice.from, 0);
        assert_eq!(advice.to, 1);
    }

    #[test]
    fn migration_advisor_quiet_when_all_cool() {
        let p = trained_predictor();
        let a = host(&[(TaskProfile::Idle, 1)], 20.0);
        let b = host(&[(TaskProfile::Idle, 1)], 20.0);
        let advisor = MigrationAdvisor::new(p, Celsius::new(90.0), 64.0);
        assert!(advisor.advise(&[a, b]).is_none());
    }

    #[test]
    fn migration_advisor_respects_memory() {
        let p = trained_predictor();
        let hot = host(&[(TaskProfile::CpuBound, 4); 8], 27.0);
        // Destination memory nearly full: 15 VMs × 4 GB = 60; adding 4 → 64 fits exactly... use 16 to overflow.
        let full = host(&[(TaskProfile::Idle, 1); 16], 21.0);
        let hot_pred = p.predict(&hot);
        let advisor = MigrationAdvisor::new(p, Celsius::new(hot_pred - 1.0), 64.0);
        // Destination full → no advice.
        assert!(advisor.advise(&[hot, full]).is_none());
    }
}
