//! Thermal anomaly detection — an extension built on the paper's
//! predictors.
//!
//! Once ψ_stable is predictable from configuration, a *persistent*
//! disagreement between prediction and measurement indicates a physical
//! fault rather than workload: a failed fan, blocked airflow, a CRAC
//! excursion the room sensors missed. Two complementary detectors:
//!
//! - [`ResidualDetector`] — a two-sided CUSUM over prediction residuals;
//!   raises an alarm when the cumulative drift exceeds a threshold.
//!   Robust to sensor noise (which is zero-mean) while catching small
//!   sustained shifts quickly.
//! - [`NoveltyDetector`] — a one-class SVM over the *joint* vector
//!   (Eq. (2) features ‖ observed stable temperature), trained on healthy
//!   records only; flags configurations whose thermal response does not
//!   match anything seen in healthy operation.

use crate::error::PredictError;
use crate::stable::StablePredictor;
use serde::{Deserialize, Serialize};
use vmtherm_sim::experiment::{ConfigSnapshot, ExperimentOutcome};
use vmtherm_svm::data::Dataset;
use vmtherm_svm::kernel::Kernel;
use vmtherm_svm::oneclass::{OneClassModel, OneClassParams};
use vmtherm_svm::scale::{ScaleMethod, Scaler};
use vmtherm_units::Celsius;

/// Which way the temperature deviates from prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Running hotter than the model predicts (failed fan, blocked inlet).
    RunningHot,
    /// Running colder than predicted (over-reported load, sensor fault).
    RunningCold,
}

/// A raised alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Deviation direction.
    pub kind: AnomalyKind,
    /// The CUSUM statistic at alarm time (°C·samples above drift).
    pub score: f64,
    /// Samples consumed since the last reset.
    pub samples: u64,
}

/// Two-sided CUSUM change detector over prediction residuals
/// `r = measured − predicted`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidualDetector {
    threshold: f64,
    drift: f64,
    cusum_hot: f64,
    cusum_cold: f64,
    samples: u64,
}

impl ResidualDetector {
    /// Creates a detector.
    ///
    /// `drift` is the per-sample slack (set it above the typical noise
    /// magnitude, e.g. 0.5 °C for whole-degree sensors); `threshold` is
    /// the accumulated excess that raises an alarm (e.g. 10 °C·samples:
    /// a 2.5 °C sustained shift with 0.5 drift alarms in five samples).
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] on a non-positive threshold or
    /// negative drift.
    pub fn new(threshold: f64, drift: f64) -> Result<Self, PredictError> {
        if !(threshold > 0.0) {
            return Err(PredictError::invalid(
                "threshold",
                format!("threshold must be positive, got {threshold}"),
            ));
        }
        if !(drift >= 0.0) {
            return Err(PredictError::invalid(
                "drift",
                format!("drift must be non-negative, got {drift}"),
            ));
        }
        Ok(ResidualDetector {
            threshold,
            drift,
            cusum_hot: 0.0,
            cusum_cold: 0.0,
            samples: 0,
        })
    }

    /// Defaults matched to the simulator's default sensor (1 °C
    /// quantization, 0.4 °C noise).
    #[must_use]
    pub fn standard() -> Self {
        ResidualDetector {
            threshold: 10.0,
            drift: 0.6,
            cusum_hot: 0.0,
            cusum_cold: 0.0,
            samples: 0,
        }
    }

    /// Feeds one residual; returns an alarm if either CUSUM crosses the
    /// threshold (the detector keeps accumulating after an alarm; call
    /// [`ResidualDetector::reset`] after handling it).
    pub fn observe(&mut self, residual: f64) -> Option<Alarm> {
        self.samples += 1;
        self.cusum_hot = (self.cusum_hot + residual - self.drift).max(0.0);
        self.cusum_cold = (self.cusum_cold - residual - self.drift).max(0.0);
        if self.cusum_hot > self.threshold {
            Some(Alarm {
                kind: AnomalyKind::RunningHot,
                score: self.cusum_hot,
                samples: self.samples,
            })
        } else if self.cusum_cold > self.threshold {
            Some(Alarm {
                kind: AnomalyKind::RunningCold,
                score: self.cusum_cold,
                samples: self.samples,
            })
        } else {
            None
        }
    }

    /// Clears the accumulated statistics.
    pub fn reset(&mut self) {
        self.cusum_hot = 0.0;
        self.cusum_cold = 0.0;
        self.samples = 0;
    }

    /// Current hot-side statistic.
    #[must_use]
    pub fn hot_score(&self) -> f64 {
        self.cusum_hot
    }

    /// Current cold-side statistic.
    #[must_use]
    pub fn cold_score(&self) -> f64 {
        self.cusum_cold
    }
}

impl Default for ResidualDetector {
    fn default() -> Self {
        Self::standard()
    }
}

/// Residual-based detector bound to a stable model: feed (snapshot,
/// measured stable temperature) pairs.
#[derive(Debug, Clone)]
pub struct ThermalWatchdog {
    model: StablePredictor,
    detector: ResidualDetector,
}

impl ThermalWatchdog {
    /// Wraps a trained stable model with a CUSUM detector.
    #[must_use]
    pub fn new(model: StablePredictor, detector: ResidualDetector) -> Self {
        ThermalWatchdog { model, detector }
    }

    /// Feeds one settled observation of a server.
    pub fn observe(
        &mut self,
        snapshot: &ConfigSnapshot,
        measured_stable_c: Celsius,
    ) -> Option<Alarm> {
        let predicted = self.model.predict(snapshot);
        self.detector.observe(measured_stable_c.get() - predicted)
    }

    /// Clears detector state (after an alarm was handled or the fleet
    /// reconfigured).
    pub fn reset(&mut self) {
        self.detector.reset();
    }

    /// The wrapped detector.
    #[must_use]
    pub fn detector(&self) -> &ResidualDetector {
        &self.detector
    }
}

/// One-class novelty detector in the 2-D space of
/// `(predicted ψ_stable, observed ψ_stable)`.
///
/// Healthy operation traces out the diagonal band of that plane (the
/// prediction error of the stable model); a physical fault pushes the
/// observation off the band in a way no healthy record ever did. Working
/// in this 2-D projection — rather than the raw 14-D feature space — keeps
/// the density estimation tractable with a few hundred records.
#[derive(Debug, Clone)]
pub struct NoveltyDetector {
    predictor: StablePredictor,
    scaler: Scaler,
    model: OneClassModel,
}

impl NoveltyDetector {
    /// Trains on healthy experiment records against a trained stable
    /// model. `nu` bounds the fraction of healthy records treated as
    /// boundary outliers (0.05–0.15 typical).
    ///
    /// Prefer records the stable model did **not** train on; residuals on
    /// its own training data understate healthy error and tighten the
    /// band optimistically.
    ///
    /// # Errors
    ///
    /// [`PredictError::NoTrainingData`] for no records; SVM errors
    /// otherwise.
    pub fn fit(
        predictor: StablePredictor,
        outcomes: &[ExperimentOutcome],
        nu: f64,
    ) -> Result<Self, PredictError> {
        if outcomes.is_empty() {
            return Err(PredictError::NoTrainingData);
        }
        let mut raw = Dataset::new(2);
        for o in outcomes {
            raw.push(vec![predictor.predict(&o.snapshot), o.psi_stable], 0.0);
        }
        let scaler = Scaler::fit(&raw, ScaleMethod::MinMax);
        let scaled = scaler.transform_dataset(&raw);
        let model = OneClassModel::train(
            &scaled,
            OneClassParams::new()
                .with_nu(nu)
                .with_kernel(Kernel::rbf(8.0)),
        )?;
        Ok(NoveltyDetector {
            predictor,
            scaler,
            model,
        })
    }

    /// `true` when the observed stable temperature is inconsistent with
    /// healthy behaviour for such a configuration.
    #[must_use]
    pub fn is_anomalous(&self, snapshot: &ConfigSnapshot, observed_stable_c: Celsius) -> bool {
        self.score(snapshot, observed_stable_c) < 0.0
    }

    /// The signed decision value (negative = anomalous), for thresholding
    /// and ranking.
    #[must_use]
    pub fn score(&self, snapshot: &ConfigSnapshot, observed_stable_c: Celsius) -> f64 {
        let x = vec![self.predictor.predict(snapshot), observed_stable_c.get()];
        self.model
            .decision_value(&self.scaler.transform(&x))
            .expect("detector dims agree by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::{CaseGenerator, SimDuration};
    use vmtherm_svm::svr::SvrParams;

    fn healthy_outcomes(n: usize) -> Vec<ExperimentOutcome> {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(n, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(1000)))
            .collect();
        run_experiments(&configs)
    }

    fn stable_model(outcomes: &[ExperimentOutcome]) -> StablePredictor {
        StablePredictor::fit(
            outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    #[test]
    fn cusum_quiet_on_zero_mean_noise() {
        let mut d = ResidualDetector::new(10.0, 0.6).expect("detector");
        // Deterministic ±0.5 alternating noise.
        for i in 0..2000 {
            let r = if i % 2 == 0 { 0.5 } else { -0.5 };
            assert!(d.observe(r).is_none(), "false alarm at {i}");
        }
    }

    #[test]
    fn cusum_catches_sustained_shift_quickly() {
        let mut d = ResidualDetector::new(10.0, 0.6).expect("detector");
        let mut alarm = None;
        for i in 0..100 {
            if let Some(a) = d.observe(2.5) {
                alarm = Some((i, a));
                break;
            }
        }
        let (when, alarm) = alarm.expect("no alarm");
        assert!(when < 10, "took {when} samples");
        assert_eq!(alarm.kind, AnomalyKind::RunningHot);
    }

    #[test]
    fn cusum_detects_cold_side_too() {
        let mut d = ResidualDetector::new(5.0, 0.3).expect("detector");
        let mut saw = None;
        for _ in 0..50 {
            if let Some(a) = d.observe(-1.5) {
                saw = Some(a);
                break;
            }
        }
        assert_eq!(saw.expect("alarm").kind, AnomalyKind::RunningCold);
    }

    #[test]
    fn cusum_reset_clears() {
        let mut d = ResidualDetector::new(5.0, 0.0).expect("detector");
        let _ = d.observe(4.0);
        assert!(d.hot_score() > 0.0);
        d.reset();
        assert_eq!(d.hot_score(), 0.0);
        assert_eq!(d.cold_score(), 0.0);
    }

    #[test]
    fn bad_detector_params_rejected() {
        assert!(matches!(
            ResidualDetector::new(0.0, 0.5),
            Err(PredictError::InvalidConfig { .. })
        ));
        assert!(ResidualDetector::new(10.0, -0.5).is_err());
        assert!(ResidualDetector::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn watchdog_fires_on_fan_failure_style_offset() {
        let outcomes = healthy_outcomes(80);
        let model = stable_model(&outcomes);
        let mut watchdog =
            ThermalWatchdog::new(model, ResidualDetector::new(8.0, 0.8).expect("detector"));
        // Healthy observations: no alarm.
        for o in outcomes.iter().take(20) {
            assert!(
                watchdog
                    .observe(&o.snapshot, Celsius::new(o.psi_stable))
                    .is_none(),
                "false alarm on healthy record"
            );
        }
        watchdog.reset();
        // A fan failure makes the same configuration run ~6 °C hotter
        // than its record says.
        let victim = &outcomes[0];
        let mut alarm = None;
        for _ in 0..20 {
            if let Some(a) =
                watchdog.observe(&victim.snapshot, Celsius::new(victim.psi_stable + 6.0))
            {
                alarm = Some(a);
                break;
            }
        }
        assert_eq!(
            alarm.expect("watchdog must fire").kind,
            AnomalyKind::RunningHot
        );
    }

    #[test]
    fn novelty_detector_separates_healthy_from_faulty() {
        let outcomes = healthy_outcomes(80);
        let model = stable_model(&outcomes);
        let detector = NoveltyDetector::fit(model, &outcomes, 0.1).unwrap();
        // Healthy joint vectors are mostly inliers.
        let healthy_flags = outcomes
            .iter()
            .filter(|o| detector.is_anomalous(&o.snapshot, Celsius::new(o.psi_stable)))
            .count();
        assert!(
            (healthy_flags as f64) < 0.25 * outcomes.len() as f64,
            "{healthy_flags} healthy records flagged"
        );
        // A +8 °C shifted response is flagged for most configurations.
        let faulty_flags = outcomes
            .iter()
            .filter(|o| detector.is_anomalous(&o.snapshot, Celsius::new(o.psi_stable + 8.0)))
            .count();
        assert!(
            (faulty_flags as f64) > 0.7 * outcomes.len() as f64,
            "only {faulty_flags} faulty records flagged"
        );
        // Scores order correctly.
        let o = &outcomes[3];
        assert!(
            detector.score(&o.snapshot, Celsius::new(o.psi_stable))
                > detector.score(&o.snapshot, Celsius::new(o.psi_stable + 8.0))
        );
    }

    #[test]
    fn novelty_detector_rejects_empty() {
        let outcomes = healthy_outcomes(10);
        let model = stable_model(&outcomes);
        assert!(matches!(
            NoveltyDetector::fit(model, &[], 0.1),
            Err(PredictError::NoTrainingData)
        ));
    }
}
