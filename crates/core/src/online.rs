//! Online model maintenance.
//!
//! The paper trains offline and deploys; in a real fleet the record stream
//! never stops, and the plant drifts — servers age (thermal paste dries,
//! filters clog), firmware changes fan curves, seasons move the room
//! envelope. [`OnlineTrainer`] keeps a sliding window of the freshest
//! records and retrains the stable model periodically, so the deployed
//! predictor tracks the *current* plant rather than the one profiled at
//! install time.

use crate::error::PredictError;
use crate::stable::{StablePredictor, TrainingOptions};
use std::collections::VecDeque;
use vmtherm_sim::experiment::ExperimentOutcome;

/// Sliding-window retraining policy.
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    window: VecDeque<ExperimentOutcome>,
    capacity: usize,
    retrain_every: usize,
    since_retrain: usize,
    options: TrainingOptions,
    model: Option<StablePredictor>,
    retrain_count: usize,
}

impl OnlineTrainer {
    /// Creates a trainer keeping the freshest `capacity` records and
    /// retraining after every `retrain_every` new records (once the
    /// window holds at least `retrain_every` records).
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or zero retrain interval.
    #[must_use]
    pub fn new(capacity: usize, retrain_every: usize, options: TrainingOptions) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(retrain_every > 0, "retrain interval must be positive");
        OnlineTrainer {
            window: VecDeque::with_capacity(capacity),
            capacity,
            retrain_every,
            since_retrain: 0,
            options,
            model: None,
            retrain_count: 0,
        }
    }

    /// Ingests one record; retrains when the policy says so. Returns
    /// `Ok(true)` when a retrain happened.
    ///
    /// # Errors
    ///
    /// Propagates training errors; the previous model stays deployed.
    pub fn push(&mut self, outcome: ExperimentOutcome) -> Result<bool, PredictError> {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(outcome);
        self.since_retrain += 1;
        let due = self.since_retrain >= self.retrain_every
            && (self.model.is_some() || self.window.len() >= self.retrain_every);
        if !due {
            return Ok(false);
        }
        let records: Vec<ExperimentOutcome> = self.window.iter().cloned().collect();
        let model = StablePredictor::fit(&records, &self.options)?;
        self.model = Some(model);
        self.since_retrain = 0;
        self.retrain_count += 1;
        Ok(true)
    }

    /// The currently deployed model, if one has been trained.
    #[must_use]
    pub fn model(&self) -> Option<&StablePredictor> {
        self.model.as_ref()
    }

    /// Records currently in the window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// How many times the model has been retrained.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::run_experiments;
    use vmtherm_sim::experiment::ExperimentConfig;
    use vmtherm_sim::server::ServerSpec;
    use vmtherm_sim::thermal::ThermalParams;
    use vmtherm_sim::vm::VmSpec;
    use vmtherm_sim::workload::TaskProfile;
    use vmtherm_sim::{CaseGenerator, SimDuration};
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;
    use vmtherm_units::Celsius;

    fn options() -> TrainingOptions {
        TrainingOptions::new().with_params(
            SvrParams::new()
                .with_c(128.0)
                .with_epsilon(0.05)
                .with_kernel(Kernel::rbf(0.02)),
        )
    }

    fn fresh_outcomes(n: usize, seed: u64) -> Vec<ExperimentOutcome> {
        let mut generator = CaseGenerator::new(seed);
        let configs: Vec<_> = generator
            .random_cases(n, seed * 17)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(900)))
            .collect();
        run_experiments(&configs)
    }

    /// Outcomes from an "aged" plant: higher die→sink resistance (dried
    /// paste) makes the same configurations run hotter.
    fn aged_outcome(i: u64) -> ExperimentOutcome {
        let aged = ThermalParams::new(150.0, 1100.0, 0.12);
        let server = ServerSpec::commodity("aged", 16, 2.4, 64.0, 4).with_thermal(aged);
        let vms = (0..4)
            .map(|k| VmSpec::new(format!("v{k}"), 2, 4.0, TaskProfile::CpuBound))
            .collect();
        ExperimentConfig::new(server, vms, Celsius::new(24.0), i)
            .with_duration(SimDuration::from_secs(900))
            .run()
    }

    #[test]
    fn trains_after_enough_records_and_windows_slide() {
        let mut trainer = OnlineTrainer::new(30, 10, options());
        let records = fresh_outcomes(25, 3);
        let mut retrains = 0;
        for r in records {
            if trainer.push(r).unwrap() {
                retrains += 1;
            }
        }
        assert_eq!(retrains, 2, "expected retrains at 10 and 20 records");
        assert!(trainer.model().is_some());
        assert_eq!(trainer.window_len(), 25);
        assert_eq!(trainer.retrain_count(), 2);
    }

    #[test]
    fn window_capacity_evicts_oldest() {
        let mut trainer = OnlineTrainer::new(5, 100, options());
        for r in fresh_outcomes(8, 4) {
            let _ = trainer.push(r).unwrap();
        }
        assert_eq!(trainer.window_len(), 5);
    }

    #[test]
    fn adapts_to_plant_drift() {
        // Train on healthy records; the aged plant runs hotter, so the
        // stale model under-predicts. After the window fills with aged
        // records and retrains, the error collapses.
        let mut trainer = OnlineTrainer::new(40, 20, options());
        for r in fresh_outcomes(40, 5) {
            let _ = trainer.push(r).unwrap();
        }
        let probe = aged_outcome(999);
        let stale_err =
            (trainer.model().unwrap().predict(&probe.snapshot) - probe.psi_stable).abs();

        for i in 0..40 {
            let _ = trainer.push(aged_outcome(i)).unwrap();
        }
        let fresh_err =
            (trainer.model().unwrap().predict(&probe.snapshot) - probe.psi_stable).abs();
        assert!(
            fresh_err < stale_err,
            "no adaptation: stale {stale_err} vs fresh {fresh_err}"
        );
        assert!(fresh_err < 1.5, "fresh error {fresh_err} still large");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = OnlineTrainer::new(0, 1, options());
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = OnlineTrainer::new(1, 0, options());
    }
}
