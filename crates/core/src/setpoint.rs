//! Predictive CRAC setpoint optimization — the paper's motivating
//! application made concrete: use ψ_stable predictions to run the room as
//! warm as safely possible, cutting cooling power.
//!
//! For each candidate supply setpoint, predict every server's stable
//! temperature with δ_env set to that supply temperature (plus its rack
//! offset); the optimizer picks the **highest setpoint whose predicted
//! fleet peak stays under the thermal limit**, with a safety margin for
//! model error (use the conformal quantile from
//! [`crate::interval::IntervalPredictor`] for a principled margin).

use crate::error::PredictError;
use crate::stable::StablePredictor;
use serde::{Deserialize, Serialize};
use vmtherm_sim::cooling::CoolingModel;
use vmtherm_sim::experiment::ConfigSnapshot;
use vmtherm_units::{Celsius, Watts};

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetpointSearch {
    /// Lowest admissible supply temperature (°C).
    pub min_supply_c: f64,
    /// Highest admissible supply temperature (°C).
    pub max_supply_c: f64,
    /// Die temperature no server may (predictedly) exceed (°C).
    pub max_die_c: f64,
    /// Safety margin added to every prediction (°C) — set it to the
    /// conformal quantile of the model's held-out error.
    pub safety_margin_c: f64,
    /// Search resolution (°C).
    pub resolution_c: f64,
}

impl SetpointSearch {
    fn validate(&self) -> Result<(), PredictError> {
        if !(self.min_supply_c < self.max_supply_c) {
            return Err(PredictError::invalid(
                "supply range",
                format!("empty range {}..{}", self.min_supply_c, self.max_supply_c),
            ));
        }
        if !(self.resolution_c > 0.0) {
            return Err(PredictError::invalid(
                "resolution_c",
                format!("must be > 0, got {}", self.resolution_c),
            ));
        }
        if !(self.safety_margin_c >= 0.0) {
            return Err(PredictError::invalid(
                "safety_margin_c",
                format!("must be >= 0, got {}", self.safety_margin_c),
            ));
        }
        Ok(())
    }
}

impl Default for SetpointSearch {
    /// 16–32 °C supply range, 70 °C die limit, 1.5 °C margin, 0.5 °C steps.
    fn default() -> Self {
        SetpointSearch {
            min_supply_c: 16.0,
            max_supply_c: 32.0,
            max_die_c: 70.0,
            safety_margin_c: 1.5,
            resolution_c: 0.5,
        }
    }
}

/// The optimizer's recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetpointAdvice {
    /// Recommended supply setpoint (°C).
    pub supply_c: f64,
    /// Predicted fleet-peak die temperature at that setpoint, margin
    /// included (°C).
    pub predicted_peak_c: f64,
    /// Cooling power at the recommended setpoint (W), for the given heat
    /// load.
    pub cooling_power_w: f64,
    /// Cooling power at the *lowest* admissible setpoint (W) — the
    /// conservative baseline the recommendation is compared against.
    pub baseline_power_w: f64,
}

impl SetpointAdvice {
    /// Fractional cooling-energy saving vs the conservative baseline.
    #[must_use]
    pub fn saving_fraction(&self) -> f64 {
        if self.baseline_power_w <= 0.0 {
            return 0.0;
        }
        1.0 - self.cooling_power_w / self.baseline_power_w
    }
}

/// Predictive setpoint optimizer.
#[derive(Debug, Clone)]
pub struct SetpointOptimizer {
    predictor: StablePredictor,
    cooling: CoolingModel,
    search: SetpointSearch,
}

impl SetpointOptimizer {
    /// Builds the optimizer.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidConfig`] on a bad search configuration.
    pub fn new(
        predictor: StablePredictor,
        cooling: CoolingModel,
        search: SetpointSearch,
    ) -> Result<Self, PredictError> {
        search.validate()?;
        Ok(SetpointOptimizer {
            predictor,
            cooling,
            search,
        })
    }

    /// Predicted fleet-peak die temperature if the supply were `supply_c`
    /// (margin included). `rack_offsets[i]` is the inlet rise of host `i`
    /// over the supply.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` and `rack_offsets` lengths differ.
    #[must_use]
    pub fn predicted_peak(
        &self,
        hosts: &[ConfigSnapshot],
        rack_offsets: &[f64],
        supply_c: Celsius,
    ) -> f64 {
        assert_eq!(
            hosts.len(),
            rack_offsets.len(),
            "hosts/offsets length mismatch"
        );
        hosts
            .iter()
            .zip(rack_offsets)
            .map(|(h, off)| {
                let mut probe = h.clone();
                probe.ambient_c = supply_c.get() + off;
                self.predictor.predict(&probe) + self.search.safety_margin_c
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Finds the highest safe setpoint for the fleet. `heat_load_w` is the
    /// room heat the CRAC must remove (IT + fans). Returns `None` when even
    /// the lowest admissible setpoint is predicted unsafe — the operator
    /// must shed load instead.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty or the offsets length differs.
    #[must_use]
    pub fn optimize(
        &self,
        hosts: &[ConfigSnapshot],
        rack_offsets: &[f64],
        heat_load_w: Watts,
    ) -> Option<SetpointAdvice> {
        assert!(!hosts.is_empty(), "no hosts to optimize for");
        let s = &self.search;
        let baseline_power_w = self
            .cooling
            .cooling_power(heat_load_w, Celsius::new(s.min_supply_c));
        let steps = ((s.max_supply_c - s.min_supply_c) / s.resolution_c).floor() as usize;
        let mut best: Option<SetpointAdvice> = None;
        for i in 0..=steps {
            let supply = s.min_supply_c + i as f64 * s.resolution_c;
            let peak = self.predicted_peak(hosts, rack_offsets, Celsius::new(supply));
            if peak > s.max_die_c {
                break; // peak is monotone in supply; nothing hotter is safe
            }
            best = Some(SetpointAdvice {
                supply_c: supply,
                predicted_peak_c: peak,
                cooling_power_w: self
                    .cooling
                    .cooling_power(heat_load_w, Celsius::new(supply)),
                baseline_power_w,
            });
        }
        best
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn predictor(&self) -> &StablePredictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{run_experiments, TrainingOptions};
    use vmtherm_sim::experiment::VmInfo;
    use vmtherm_sim::workload::TaskProfile;
    use vmtherm_sim::{CaseGenerator, SimDuration};
    use vmtherm_svm::kernel::Kernel;
    use vmtherm_svm::svr::SvrParams;

    fn predictor() -> StablePredictor {
        let mut generator = CaseGenerator::new(42);
        let configs: Vec<_> = generator
            .random_cases(100, 1_000)
            .into_iter()
            .map(|c| c.with_duration(SimDuration::from_secs(1000)))
            .collect();
        let outcomes = run_experiments(&configs);
        StablePredictor::fit(
            &outcomes,
            &TrainingOptions::new().with_params(
                SvrParams::new()
                    .with_c(128.0)
                    .with_epsilon(0.05)
                    .with_kernel(Kernel::rbf(0.02)),
            ),
        )
        .unwrap()
    }

    fn host(cpu_vms: usize, ambient: f64) -> ConfigSnapshot {
        ConfigSnapshot {
            theta_cpu: 38.4,
            theta_memory_gb: 64.0,
            fan_count: 4,
            fan_airflow_cfm: 144.0,
            vms: (0..cpu_vms)
                .map(|_| VmInfo {
                    vcpus: 2,
                    memory_gb: 4.0,
                    task: TaskProfile::CpuBound,
                })
                .collect(),
            ambient_c: ambient,
        }
    }

    fn optimizer(max_die_c: f64) -> SetpointOptimizer {
        let search = SetpointSearch {
            max_die_c,
            ..SetpointSearch::default()
        };
        SetpointOptimizer::new(predictor(), CoolingModel::default(), search).unwrap()
    }

    #[test]
    fn lighter_fleets_get_warmer_setpoints() {
        let opt = optimizer(62.0);
        let light = [host(2, 24.0)];
        let heavy = [host(8, 24.0)];
        let a = opt
            .optimize(&light, &[0.0], Watts::new(10_000.0))
            .expect("light feasible");
        let b = opt
            .optimize(&heavy, &[0.0], Watts::new(10_000.0))
            .expect("heavy feasible");
        assert!(
            a.supply_c > b.supply_c,
            "light fleet setpoint {} not above heavy {}",
            a.supply_c,
            b.supply_c
        );
        assert!(a.saving_fraction() > b.saving_fraction());
    }

    #[test]
    fn infeasible_limit_returns_none() {
        let opt = optimizer(20.0); // nothing can stay under 20 °C die
        assert!(opt
            .optimize(&[host(8, 24.0)], &[0.0], Watts::new(10_000.0))
            .is_none());
    }

    #[test]
    fn advice_respects_limit_and_is_monotone_in_limit() {
        let loose = optimizer(65.0)
            .optimize(&[host(6, 24.0)], &[0.0], Watts::new(10_000.0))
            .unwrap();
        let tight = optimizer(55.0)
            .optimize(&[host(6, 24.0)], &[0.0], Watts::new(10_000.0))
            .unwrap();
        assert!(loose.predicted_peak_c <= 65.0);
        assert!(tight.predicted_peak_c <= 55.0);
        assert!(loose.supply_c >= tight.supply_c);
        assert!(loose.cooling_power_w <= tight.cooling_power_w);
    }

    #[test]
    fn rack_offsets_tighten_the_answer() {
        let opt = optimizer(60.0);
        let flat = opt
            .optimize(&[host(6, 24.0)], &[0.0], Watts::new(10_000.0))
            .unwrap();
        let offset = opt
            .optimize(&[host(6, 24.0)], &[3.0], Watts::new(10_000.0))
            .unwrap();
        assert!(offset.supply_c <= flat.supply_c);
    }

    #[test]
    fn saving_fraction_zero_at_baseline() {
        let a = SetpointAdvice {
            supply_c: 16.0,
            predicted_peak_c: 50.0,
            cooling_power_w: 100.0,
            baseline_power_w: 100.0,
        };
        assert_eq!(a.saving_fraction(), 0.0);
    }

    #[test]
    fn bad_search_rejected() {
        let bad = SetpointSearch {
            min_supply_c: 30.0,
            max_supply_c: 20.0,
            ..Default::default()
        };
        assert!(SetpointOptimizer::new(predictor(), CoolingModel::default(), bad).is_err());
        let bad = SetpointSearch {
            resolution_c: 0.0,
            ..Default::default()
        };
        assert!(SetpointOptimizer::new(predictor(), CoolingModel::default(), bad).is_err());
    }
}
