//! Online datacenter monitoring: rolling dynamic predictions for a whole
//! fleet — the "deployed in real environment" mode of the paper ("the
//! model received data collected online and output prediction values").
//!
//! Eight servers run a churning workload (boots, stops, a migration, an
//! ambient step). A [`FleetMonitor`] attaches one calibrated dynamic
//! predictor per server, re-anchors automatically on every
//! reconfiguration event, and scores each 60 s forecast when its target
//! time arrives. Every 120 s the example prints measured vs forecast per
//! server.
//!
//! Run with: `cargo run --release --example datacenter_monitoring`

use vmtherm::core::dynamic::DynamicConfig;
use vmtherm::core::monitor::FleetMonitor;
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::workload::TaskProfile;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, Event, ServerId, ServerSpec, SimDuration, SimTime,
    Simulation, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::{Celsius, Seconds};

const SERVERS: usize = 8;
const GAP_SECS: f64 = 60.0;
const HOT_THRESHOLD_C: f64 = 62.0;

fn main() {
    println!("training stable model (80 experiments)...");
    let mut generator = CaseGenerator::new(17);
    let configs: Vec<_> = generator
        .random_cases(80, 400)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&configs);
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    let stable = StablePredictor::fit(&outcomes, &options).expect("training failed");

    // --- Build the fleet and a churning schedule ---------------------------
    let ambient = 23.0;
    let mut dc = Datacenter::new();
    for i in 0..SERVERS {
        dc.add_server(
            ServerSpec::standard(format!("node-{i}")),
            Celsius::new(ambient),
            i as u64,
        );
    }
    let mut sim = Simulation::new(dc, AmbientModel::Fixed(ambient), 2024);

    // Initial tenancy.
    let mut seeded = Vec::new();
    for i in 0..SERVERS {
        for j in 0..(1 + i % 3) {
            let task = match (i + j) % 4 {
                0 => TaskProfile::CpuBound,
                1 => TaskProfile::WebServer,
                2 => TaskProfile::Mixed,
                _ => TaskProfile::MemoryBound,
            };
            let id = sim
                .boot_vm_now(
                    ServerId::new(i),
                    VmSpec::new(format!("init-{i}-{j}"), 2, 4.0, task),
                )
                .expect("boot");
            seeded.push(id);
        }
    }
    // Churn: arrivals, a departure, one migration, one CRAC excursion.
    for (name, at) in [("burst-a", 300u64), ("burst-b", 300)] {
        sim.schedule(
            SimTime::from_secs(at),
            Event::BootVm {
                server: ServerId::new(0),
                spec: VmSpec::new(name, 4, 8.0, TaskProfile::CpuBound),
            },
        );
    }
    sim.schedule(SimTime::from_secs(700), Event::StopVm(seeded[1]));
    sim.schedule(
        SimTime::from_secs(900),
        Event::MigrateVm {
            vm: seeded[0],
            dest: ServerId::new(5),
        },
    );
    sim.schedule(
        SimTime::from_secs(1100),
        Event::SetAmbient(AmbientModel::Fixed(26.0)),
    );

    // --- Attach the monitor and run ----------------------------------------
    let mut monitor = FleetMonitor::new(
        stable,
        DynamicConfig::new(),
        SERVERS,
        Seconds::new(GAP_SECS),
    )
    .expect("monitor config");

    println!("\n   t | server: measured -> forecast(+60s)  [* = predicted hotspot]");
    let horizon = SimTime::from_secs(1800);
    while sim.now() < horizon {
        sim.step();
        monitor.observe(&sim, Celsius::new(ambient));

        if sim.now().as_millis().is_multiple_of(120_000) {
            let now = sim.now().as_secs_f64();
            let mut row = format!("{:>5}s |", now as u64);
            for i in 0..SERVERS {
                let sid = ServerId::new(i);
                let measured = sim
                    .trace(sid)
                    .expect("trace")
                    .sensor_c
                    .last()
                    .map_or(f64::NAN, |(_, v)| v);
                let forecast = monitor.latest_forecast(sid).map_or(f64::NAN, |(_, v)| v);
                let flag = if forecast > HOT_THRESHOLD_C { "*" } else { " " };
                row.push_str(&format!(" {measured:>4.0}->{forecast:>4.0}{flag}"));
            }
            println!("{row}");
        }
    }

    println!("\nrolling {GAP_SECS:.0} s forecast error per server:");
    for i in 0..SERVERS {
        let stats = monitor.stats(ServerId::new(i));
        println!(
            "  node-{i}: MSE {:>6.3} over {} forecasts",
            stats.mse(),
            stats.scored
        );
    }
    println!("\nfleet-wide dynamic MSE: {:.3}", monitor.fleet_mse());
    println!("paper reference (Fig. 1c): dynamic MSE between 0.70 and 1.50");
}
