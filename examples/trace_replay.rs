//! Replaying recorded utilization traces — the ingestion path for real
//! production data.
//!
//! The paper trained on records from live servers; this repository's
//! simulated campaign stands in for them (DESIGN.md §2). When real traces
//! *are* available — CSV exports from a monitoring system — they plug into
//! the same pipeline through [`UtilizationModel::trace_from_csv`]. This
//! example builds two "recorded" traces (a diurnal web tier and a spiky
//! batch queue), runs them through the thermal simulator, and shows the
//! stable model predicting their servers within the usual error band.
//!
//! Run with: `cargo run --release --example trace_replay`

use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::experiment::ConfigSnapshot;
use vmtherm::sim::workload::UtilizationModel;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, ServerSpec, SimDuration, SimTime, Simulation,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::Celsius;

/// A CSV trace as a monitoring system might export it: diurnal load
/// compressed to a 600 s period so the run settles inside the protocol
/// window.
fn web_tier_csv() -> String {
    let mut csv = String::from("time_s,utilization\n");
    for i in 0..=60 {
        let t = i as f64 * 10.0;
        let u = 0.45 + 0.25 * (std::f64::consts::TAU * t / 600.0).sin();
        csv.push_str(&format!("{t},{u:.4}\n"));
    }
    csv
}

/// A spiky batch queue: mostly quiet with periodic bursts.
fn batch_queue_csv() -> String {
    let mut csv = String::from("time_s,utilization\n");
    for i in 0..=60 {
        let t = i as f64 * 10.0;
        let u = if (i / 6) % 2 == 0 { 0.15 } else { 0.85 };
        csv.push_str(&format!("{t},{u:.4}\n"));
    }
    csv
}

fn main() {
    // Parse the "recorded" traces exactly as a user would parse real ones.
    let web = UtilizationModel::trace_from_csv(&web_tier_csv()).expect("web trace");
    let batch = UtilizationModel::trace_from_csv(&batch_queue_csv()).expect("batch trace");
    println!(
        "ingested traces: web tier (mean {:.2}), batch queue (mean {:.2})",
        web.level_hint(),
        batch.level_hint()
    );

    // Train the usual stable model on the synthetic campaign.
    println!("training stable model (100 experiments)...");
    let mut generator = CaseGenerator::new(8);
    let configs: Vec<_> = generator
        .random_cases(100, 700)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&configs);
    let model = StablePredictor::fit(
        &outcomes,
        &TrainingOptions::new().with_params(
            SvrParams::new()
                .with_c(128.0)
                .with_epsilon(0.05)
                .with_kernel(Kernel::rbf(0.02)),
        ),
    )
    .expect("training");

    // Run a server hosting trace-driven VMs. The traces drive utilization
    // directly; the feature encoding still sees only the VM shapes, so we
    // pick task profiles whose nominal levels match the traces' means —
    // exactly the approximation a deployment makes when tasks are opaque.
    let ambient = 24.0;
    for (label, trace, vcpus) in [("web tier", web, 8u32), ("batch queue", batch, 8)] {
        let mut dc = Datacenter::new();
        let sid = dc.add_server(ServerSpec::standard("replay"), Celsius::new(ambient), 21);
        let mut sim = Simulation::new(dc, AmbientModel::Fixed(ambient), 21);
        // Boot VMs whose profile approximates the trace mean; then replace
        // their generators with the real trace.
        let spec = vmtherm::sim::VmSpec::new(
            "trace-vm",
            vcpus,
            16.0,
            vmtherm::sim::TaskProfile::WebServer, // nominal 0.5 ≈ both means
        );
        sim.boot_vm_now(sid, spec).expect("boot");
        let snapshot = ConfigSnapshot::capture(&sim, sid, Celsius::new(ambient));
        {
            let server = sim.datacenter_mut().server_mut(sid).expect("server");
            for vm in server.vms_mut() {
                vm.replace_workload(trace.clone().into_generator());
            }
        }
        sim.run_until(SimTime::from_secs(1500));
        let trace_data = sim.trace(sid).expect("trace");
        let measured = trace_data
            .sensor_c
            .mean_after(SimTime::from_secs(600))
            .expect("samples");
        let predicted = model.predict(&snapshot);
        println!(
            "{label:<12} measured psi_stable {measured:>6.2} C | predicted {predicted:>6.2} C | error {:+.2} C",
            predicted - measured
        );
    }
    println!("\nreal production traces plug in through the same `trace_from_csv` path.");
}
