//! Predictive CRAC setpoint optimization — closing the loop on the
//! paper's stated goal: "enhance datacenter thermal management towards
//! minimizing cooling power draw."
//!
//! A conservative operator pins the supply at 18 °C. The predictive
//! optimizer instead asks the stable model how warm the room can run
//! before any server's predicted ψ_stable (plus a conformal safety
//! margin) crosses the thermal limit — then the recommendation is
//! **verified in simulation**: the fleet runs at the advised setpoint and
//! the measured peak must stay below the limit.
//!
//! Run with: `cargo run --release --example cooling_optimization`

use vmtherm::core::interval::IntervalPredictor;
use vmtherm::core::setpoint::{SetpointOptimizer, SetpointSearch};
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::cooling::CoolingModel;
use vmtherm::sim::experiment::ConfigSnapshot;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, ServerId, ServerSpec, SimDuration, SimTime,
    Simulation, TaskProfile, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::{Celsius, Watts};

const SERVERS: usize = 6;
const DIE_LIMIT_C: f64 = 68.0;

fn build_fleet(supply_c: f64, seed: u64) -> Simulation {
    let mut dc = Datacenter::new();
    for i in 0..SERVERS {
        dc.add_server(
            ServerSpec::standard(format!("n{i}")),
            Celsius::new(supply_c),
            seed + i as u64,
        );
    }
    let mut sim = Simulation::new(dc, AmbientModel::Fixed(supply_c), seed);
    // Mixed tenancy, heavy enough that the thermal limit binds.
    for i in 0..SERVERS {
        for j in 0..(4 + i % 3) {
            let task = match (i + j) % 3 {
                0 | 1 => TaskProfile::CpuBound,
                _ => TaskProfile::Mixed,
            };
            sim.boot_vm_now(
                ServerId::new(i),
                VmSpec::new(format!("vm-{i}-{j}"), 4, 4.0, task),
            )
            .expect("boot");
        }
    }
    sim
}

fn main() {
    // --- Train model + conformal margin -------------------------------------
    println!("training stable model and conformal calibration...");
    let mut generator = CaseGenerator::new(3);
    let all: Vec<_> = generator
        .random_cases(160, 900)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&all);
    let (train, calib) = outcomes.split_at(120);
    let model = StablePredictor::fit(
        train,
        &TrainingOptions::new().with_params(
            SvrParams::new()
                .with_c(128.0)
                .with_epsilon(0.05)
                .with_kernel(Kernel::rbf(0.02)),
        ),
    )
    .expect("training");
    let conformal = IntervalPredictor::calibrate(model.clone(), calib).expect("calibration");
    let margin = conformal.quantile(0.05); // 95% one-sided-ish safety margin
    println!("conformal 95% margin: {margin:.2} C");

    // --- Capture fleet configuration at the conservative baseline -----------
    let baseline_supply = 16.0;
    let mut probe = build_fleet(baseline_supply, 50);
    probe.run_until(SimTime::from_secs(5)); // settle bookkeeping
    let hosts: Vec<ConfigSnapshot> = (0..SERVERS)
        .map(|i| ConfigSnapshot::capture(&probe, ServerId::new(i), Celsius::new(baseline_supply)))
        .collect();
    let offsets = vec![0.0; SERVERS];
    // Estimate room heat from the probe run.
    probe.run_until(SimTime::from_secs(60));
    let heat_w = probe.datacenter().room_heat_kw() * 1000.0;

    // --- Optimize ------------------------------------------------------------
    let cooling = CoolingModel::default();
    let search = SetpointSearch {
        min_supply_c: baseline_supply,
        max_supply_c: 32.0,
        max_die_c: DIE_LIMIT_C,
        safety_margin_c: margin,
        resolution_c: 0.5,
    };
    let optimizer = SetpointOptimizer::new(model, cooling, search).expect("optimizer config");
    let advice = optimizer
        .optimize(&hosts, &offsets, Watts::new(heat_w))
        .expect("a feasible setpoint must exist");

    println!(
        "\nfleet heat load: {:.1} kW over {SERVERS} servers",
        heat_w / 1000.0
    );
    println!("thermal limit:  die <= {DIE_LIMIT_C} C (predicted peak + {margin:.2} C margin)");
    println!(
        "\nbaseline supply: {baseline_supply:.1} C -> cooling {:.1} kW",
        advice.baseline_power_w / 1000.0
    );
    println!(
        "advised supply:  {:.1} C -> cooling {:.1} kW  (predicted peak {:.1} C)",
        advice.supply_c,
        advice.cooling_power_w / 1000.0,
        advice.predicted_peak_c
    );
    println!(
        "cooling energy saving: {:.1}%",
        advice.saving_fraction() * 100.0
    );

    // --- Verify the recommendation in simulation ----------------------------
    println!("\nverifying: running the fleet at the advised setpoint for 1500 s...");
    let mut verify = build_fleet(advice.supply_c, 50);
    verify.run_until(SimTime::from_secs(1500));
    let (hottest, peak) = verify.datacenter().hottest().expect("fleet");
    println!("measured fleet peak: {peak:.2} C on {hottest}");
    if peak <= DIE_LIMIT_C {
        println!("VERIFIED: measured peak stays under the {DIE_LIMIT_C} C limit.");
    } else {
        println!("VIOLATION: measured peak exceeded the limit — margin too thin.");
    }
    let pue_before = cooling.pue(
        Watts::new(heat_w),
        Celsius::new(baseline_supply),
        Watts::ZERO,
    );
    let pue_after = cooling.pue(
        Watts::new(heat_w),
        Celsius::new(advice.supply_c),
        Watts::ZERO,
    );
    println!("PUE (cooling-only): {pue_before:.3} -> {pue_after:.3}");
}
