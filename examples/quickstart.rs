//! Quickstart: the paper's full stable-temperature pipeline in ~40 lines.
//!
//! 1. Run a campaign of randomized experiments (2–12 VMs, varying fans and
//!    ambient) on the simulated testbed.
//! 2. Train the SVR stable-temperature model from the collected records.
//! 3. Predict ψ_stable for unseen configurations and report the MSE.
//!
//! Run with: `cargo run --release --example quickstart`

use vmtherm::core::eval::evaluate_stable;
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::{CaseGenerator, SimDuration};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;

fn main() {
    // --- 1. Data collection campaign --------------------------------------
    println!("collecting training records (100 randomized experiments)...");
    let mut generator = CaseGenerator::new(42);
    let train_configs: Vec<_> = generator
        .random_cases(100, 1_000)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let train = run_experiments(&train_configs);

    // --- 2. Train the stable model -----------------------------------------
    // Fixed hyper-parameters keep the quickstart fast; drop `.with_params`
    // to grid-search (C, gamma, epsilon) with 10-fold CV as the paper does.
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    let model = StablePredictor::fit(&train, &options).expect("training failed");
    println!(
        "trained: {} support vectors over {} records",
        model.num_support_vectors(),
        train.len()
    );

    // --- 3. Evaluate on unseen cases ---------------------------------------
    let mut test_generator = CaseGenerator::new(7_777);
    let test_configs: Vec<_> = test_generator
        .random_cases(20, 9_000)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let test = run_experiments(&test_configs);
    let report = evaluate_stable(&model, &test);

    println!("\ncase  vms  fans  ambient   measured   predicted   error");
    for (i, measured, predicted) in &report.cases {
        let snap = &test[*i].snapshot;
        println!(
            "{:>4}  {:>3}  {:>4}  {:>6.1}C  {:>8.2}C  {:>9.2}C  {:>+6.2}",
            i,
            snap.vms.len(),
            snap.fan_count,
            snap.ambient_c,
            measured,
            predicted,
            predicted - measured
        );
    }
    println!(
        "\nstable prediction over {} held-out cases: MSE = {:.3}  MAE = {:.3}  max = {:.3}",
        report.cases.len(),
        report.mse,
        report.mae,
        report.max_error
    );
    println!("paper reference (Fig. 1a): average MSE within 1.10");
}
