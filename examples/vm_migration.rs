//! Dynamic temperature prediction through a live VM migration — the
//! scenario that breaks traditional task-temperature and RC models and
//! motivates the paper.
//!
//! A loaded server receives a burst of VMs at t = 0, then at t = 900 s two
//! of them are migrated away to a second host. The calibrated dynamic
//! predictor re-anchors its curve at each reconfiguration using the stable
//! model's fresh ψ_stable prediction; the uncalibrated curve and a
//! last-value baseline run alongside for comparison.
//!
//! Run with: `cargo run --release --example vm_migration`

use vmtherm::core::baseline::LastValuePredictor;
use vmtherm::core::dynamic::{DynamicConfig, DynamicPredictor};
use vmtherm::core::eval::evaluate_online;
use vmtherm::core::predictor::OnlinePredictor;
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::experiment::ConfigSnapshot;
use vmtherm::sim::workload::TaskProfile;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, Event, ServerId, ServerSpec, SimDuration, SimTime,
    Simulation, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::{Celsius, Seconds};

fn train_stable_model() -> StablePredictor {
    println!("training stable model (80 experiments)...");
    let mut generator = CaseGenerator::new(11);
    let configs: Vec<_> = generator
        .random_cases(80, 500)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&configs);
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    StablePredictor::fit(&outcomes, &options).expect("training failed")
}

fn main() {
    let stable = train_stable_model();

    // --- The migration scenario -------------------------------------------
    let ambient = 24.0;
    let mut dc = Datacenter::new();
    let src = dc.add_server(ServerSpec::standard("src"), Celsius::new(ambient), 1);
    let dst = dc.add_server(ServerSpec::standard("dst"), Celsius::new(ambient), 2);
    let mut sim = Simulation::new(dc, AmbientModel::Fixed(ambient), 99);

    // Boot 6 VMs on the source at t = 0.
    let mut vm_ids = Vec::new();
    for i in 0..6 {
        let task = if i % 2 == 0 {
            TaskProfile::CpuBound
        } else {
            TaskProfile::Mixed
        };
        let id = sim
            .boot_vm_now(src, VmSpec::new(format!("vm-{i}"), 2, 6.0, task))
            .expect("boot failed");
        vm_ids.push(id);
    }
    // Migrate two of them away at t = 900 s.
    let migrate_at = SimTime::from_secs(900);
    sim.schedule(
        migrate_at,
        Event::MigrateVm {
            vm: vm_ids[0],
            dest: dst,
        },
    );
    sim.schedule(
        migrate_at,
        Event::MigrateVm {
            vm: vm_ids[2],
            dest: dst,
        },
    );
    sim.run_until(SimTime::from_secs(1800));

    let trace = sim.trace(src).expect("trace").clone();
    let series = &trace.sensor_c;

    // --- Drive the predictors over the measured series ---------------------
    let snapshot_before = {
        // Reconstruct the source configuration before/after migration.
        let mut sim2 = {
            let mut dc = Datacenter::new();
            dc.add_server(ServerSpec::standard("src"), Celsius::new(ambient), 1);
            Simulation::new(dc, AmbientModel::Fixed(ambient), 99)
        };
        for i in 0..6 {
            let task = if i % 2 == 0 {
                TaskProfile::CpuBound
            } else {
                TaskProfile::Mixed
            };
            sim2.boot_vm_now(
                ServerId::new(0),
                VmSpec::new(format!("vm-{i}"), 2, 6.0, task),
            )
            .expect("boot");
        }
        ConfigSnapshot::capture(&sim2, ServerId::new(0), Celsius::new(ambient))
    };
    let mut snapshot_after = snapshot_before.clone();
    snapshot_after.vms.remove(2); // vm-2 (cpu-bound) migrated away
    snapshot_after.vms.remove(0); // vm-0 (cpu-bound) migrated away

    let gap = 60.0;
    let mut calibrated = DynamicPredictor::new(DynamicConfig::new()).expect("config");
    let mut uncalibrated =
        DynamicPredictor::new(DynamicConfig::new().without_calibration()).expect("config");
    let phi0 = series.values()[0];
    for p in [&mut calibrated, &mut uncalibrated] {
        p.anchor_with_model(Seconds::ZERO, Celsius::new(phi0), &stable, &snapshot_before);
    }

    // Replay, re-anchoring at the migration.
    let mut results = Vec::new();
    for (pred, label) in [
        (&mut calibrated, "calibrated"),
        (&mut uncalibrated, "uncalibrated"),
    ] {
        // Manual replay so the re-anchor lands mid-stream.
        let mut scored: Vec<(f64, f64)> = Vec::new();
        let times = series.times().to_vec();
        let values = series.values().to_vec();
        for (i, (&t, &v)) in times.iter().zip(&values).enumerate() {
            if (t - migrate_at.as_secs_f64()).abs() < 0.5 {
                pred.anchor_with_model(Seconds::new(t), Celsius::new(v), &stable, &snapshot_after);
            }
            pred.observe(Seconds::new(t), Celsius::new(v));
            let target = t + gap;
            if let Some(j) = times[i..].iter().position(|x| *x >= target - 1e-9) {
                scored.push((
                    values[i + j],
                    pred.predict_ahead(Seconds::new(t), Seconds::new(gap)),
                ));
            }
        }
        let mse = scored.iter().map(|(a, p)| (a - p) * (a - p)).sum::<f64>() / scored.len() as f64;
        results.push((label, mse));
    }

    let mut last_value = LastValuePredictor::new();
    let lv = evaluate_online(&mut last_value, series, Seconds::new(gap));

    println!("\nscenario: 6 VMs boot at t=0; 2 migrate away at t=900 s; gap = {gap} s");
    println!(
        "predicted stable before migration: {:.1} C",
        stable.predict(&snapshot_before)
    );
    println!(
        "predicted stable after  migration: {:.1} C",
        stable.predict(&snapshot_after)
    );
    println!("\npredictor               MSE");
    for (label, mse) in &results {
        println!("{label:<22} {mse:>6.3}");
    }
    println!("{:<22} {:>6.3}", lv.name, lv.mse);
    println!(
        "\npaper reference (Fig. 1b): calibration lowers dynamic MSE; \
         typical calibrated MSE ~1.6 under dynamics"
    );
}
