//! Live fleet drift dashboard: the observability layer watching the
//! paper's online deployment mode (Fig. 1(c) scenario — per-server
//! calibrated dynamic forecasts under VM churn).
//!
//! Six servers run a churning workload (boots, a stop, a migration). A
//! [`FleetMonitor`] attaches one dynamic predictor per server and, because
//! the global obs registry is enabled, exports per-server drift gauges:
//!
//! - `vmtherm_monitor_rolling_mse{server="N"}` — MSE over the last 128
//!   scored forecasts,
//! - `vmtherm_monitor_gamma_abs{server="N"}` — |γ|, the calibration
//!   magnitude of Eq. (6),
//! - `vmtherm_monitor_since_reanchor_secs{server="N"}` — staleness of
//!   the current warm-up curve anchor,
//! - `vmtherm_monitor_pending_forecasts{server="N"}` — forecasts issued
//!   but not yet matured.
//!
//! Every 180 s the example reads those gauges back from the registry —
//! exactly what a scraping dashboard would do — and renders a drift table.
//!
//! Run with: `cargo run --release --example fleet_dashboard`

use vmtherm::core::dynamic::DynamicConfig;
use vmtherm::core::monitor::FleetMonitor;
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::obs::{self, names};
use vmtherm::sim::workload::TaskProfile;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, Event, ServerId, ServerSpec, SimDuration, SimTime,
    Simulation, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::{Celsius, Seconds};

const SERVERS: usize = 6;
const GAP_SECS: f64 = 60.0;
const TABLE_EVERY_SECS: u64 = 180;

fn gauge(base: &str, server: usize) -> f64 {
    obs::global()
        .gauge(&names::server_gauge(base, server))
        .get()
}

fn main() {
    // Everything below feeds the registry the dashboard reads.
    obs::set_enabled(true);

    println!("training stable model (80 experiments)...");
    let mut generator = CaseGenerator::new(17);
    let configs: Vec<_> = generator
        .random_cases(80, 400)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&configs);
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    let stable = StablePredictor::fit(&outcomes, &options).expect("training failed");

    // --- Fleet with churn: boots, one stop, one migration ------------------
    let ambient = 23.0;
    let mut dc = Datacenter::new();
    for i in 0..SERVERS {
        dc.add_server(
            ServerSpec::standard(format!("node-{i}")),
            Celsius::new(ambient),
            i as u64,
        );
    }
    let mut sim = Simulation::new(dc, AmbientModel::Fixed(ambient), 2024);
    let mut seeded = Vec::new();
    for i in 0..SERVERS {
        for j in 0..(1 + i % 3) {
            let task = match (i + j) % 4 {
                0 => TaskProfile::CpuBound,
                1 => TaskProfile::WebServer,
                2 => TaskProfile::Mixed,
                _ => TaskProfile::MemoryBound,
            };
            let id = sim
                .boot_vm_now(
                    ServerId::new(i),
                    VmSpec::new(format!("init-{i}-{j}"), 2, 4.0, task),
                )
                .expect("boot");
            seeded.push(id);
        }
    }
    sim.schedule(
        SimTime::from_secs(400),
        Event::BootVm {
            server: ServerId::new(2),
            spec: VmSpec::new("burst", 4, 8.0, TaskProfile::CpuBound),
        },
    );
    sim.schedule(SimTime::from_secs(700), Event::StopVm(seeded[1]));
    sim.schedule(
        SimTime::from_secs(900),
        Event::MigrateVm {
            vm: seeded[0],
            dest: ServerId::new(4),
        },
    );

    let mut monitor = FleetMonitor::new(
        stable,
        DynamicConfig::new(),
        SERVERS,
        Seconds::new(GAP_SECS),
    )
    .expect("monitor config");

    println!("\ndrift table, read back from the obs registry every {TABLE_EVERY_SECS} s:");
    let horizon = SimTime::from_secs(1800);
    while sim.now() < horizon {
        sim.step();
        monitor.observe(&sim, Celsius::new(ambient));

        if sim
            .now()
            .as_millis()
            .is_multiple_of(TABLE_EVERY_SECS * 1000)
        {
            println!(
                "\n  t={:>5}s | {:>11} | {:>7} | {:>13} | {:>7}",
                sim.now().as_secs_f64() as u64,
                "rolling MSE",
                "|gamma|",
                "s since ankr",
                "pending"
            );
            for i in 0..SERVERS {
                let mse = gauge(names::METRIC_MONITOR_ROLLING_MSE, i);
                let gamma = gauge(names::METRIC_MONITOR_GAMMA_ABS, i);
                let since = gauge(names::METRIC_MONITOR_SINCE_REANCHOR, i);
                let pending = gauge(names::METRIC_MONITOR_PENDING, i);
                println!(
                    "  node-{i}   | {:>11} | {gamma:>7.3} | {since:>13.0} | {pending:>7.0}",
                    if mse.is_nan() {
                        "warming".to_string()
                    } else {
                        format!("{mse:.3}")
                    },
                );
            }
        }
    }

    let reanchors = obs::global().counter(names::METRIC_REANCHOR_TOTAL).get();
    let scored = obs::global().counter(names::METRIC_FORECASTS_SCORED).get();
    println!("\nfleet-wide dynamic MSE: {:.3}", monitor.fleet_mse());
    println!("re-anchors: {reanchors} | forecasts scored: {scored}");
    println!("paper reference (Fig. 1c): dynamic MSE between 0.70 and 1.50");
}
