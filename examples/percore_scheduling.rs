//! Per-core thermal modelling: why vCPU scheduling policy matters.
//!
//! Real DTS monitoring reports the **hottest core**, and the VMM's vCPU
//! placement decides how concentrated the heat is: static pinning packs a
//! VM's load onto few cores, a work-conserving scheduler spreads it. The
//! package-level models of the paper can't see this; the simulator's
//! per-core mode ([`ServerSpec::with_core_scheduling`]) can. This example
//! runs the same tenancy under both policies and shows the hottest-core
//! gap, then demonstrates that the stable model trained on hottest-core
//! sensors still predicts within its usual band (the policy is fixed
//! per deployment, so the learner absorbs it).
//!
//! Run with: `cargo run --release --example percore_scheduling`

use vmtherm::core::stable::{StablePredictor, TrainingOptions};
use vmtherm::sim::experiment::{CaseGenerator, ExperimentConfig};
use vmtherm::sim::vmm::SchedulingPolicy;
use vmtherm::sim::{ServerSpec, SimDuration, TaskProfile, VmSpec};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::Celsius;

fn spec_with(policy: SchedulingPolicy) -> ServerSpec {
    ServerSpec::standard("percore").with_core_scheduling(policy)
}

fn tenancy() -> Vec<VmSpec> {
    vec![
        VmSpec::new("hog-a", 4, 8.0, TaskProfile::CpuBound),
        VmSpec::new("hog-b", 4, 8.0, TaskProfile::CpuBound),
        VmSpec::new("web", 2, 4.0, TaskProfile::WebServer),
        VmSpec::new("idle", 1, 2.0, TaskProfile::Idle),
    ]
}

fn main() {
    // --- 1. Same tenancy, two scheduling policies ---------------------------
    println!("same 4-VM tenancy on a 16-core server, two vCPU scheduling policies:\n");
    let mut results = Vec::new();
    for (label, policy) in [
        ("balanced", SchedulingPolicy::Balanced),
        ("pinned", SchedulingPolicy::Pinned),
    ] {
        let outcome = ExperimentConfig::new(spec_with(policy), tenancy(), Celsius::new(24.0), 7)
            .with_duration(SimDuration::from_secs(1200))
            .run();
        println!(
            "{label:<9} hottest-core psi_stable = {:.2} C (utilization-weighted package heat is identical)",
            outcome.psi_stable
        );
        results.push((label, outcome.psi_stable));
    }
    let gap = results[1].1 - results[0].1;
    println!("\npinning concentrates heat: hottest core runs {gap:+.2} C vs balanced.\n");

    // --- 2. The learner absorbs a fixed policy ------------------------------
    // Train and test entirely on pinned-policy, hottest-core sensors.
    println!("training the stable model on pinned-policy hottest-core records...");
    let mut generator = CaseGenerator::new(9);
    let configs: Vec<ExperimentConfig> = generator
        .random_cases(80, 250)
        .into_iter()
        .map(|c| {
            let server = ServerSpec::commodity(
                "pinned",
                c.server.cores(),
                c.server.ghz_per_core(),
                c.server.memory_gb(),
                c.server.fans().count(),
            )
            .with_core_scheduling(SchedulingPolicy::Pinned);
            ExperimentConfig { server, ..c }.with_duration(SimDuration::from_secs(1200))
        })
        .collect();
    let (train_cfg, test_cfg) = configs.split_at(70);
    let train: Vec<_> = train_cfg.iter().map(ExperimentConfig::run).collect();
    let test: Vec<_> = test_cfg.iter().map(ExperimentConfig::run).collect();
    let model = StablePredictor::fit(
        &train,
        &TrainingOptions::new().with_params(
            SvrParams::new()
                .with_c(128.0)
                .with_epsilon(0.05)
                .with_kernel(Kernel::rbf(0.02)),
        ),
    )
    .expect("training");
    let report = vmtherm::core::eval::evaluate_stable(&model, &test);
    println!(
        "held-out hottest-core MSE = {:.3} over {} cases (paper band for package-level: <= 1.10)",
        report.mse,
        report.cases.len()
    );
    println!("\na fixed scheduling policy is just another plant characteristic the SVR learns.");
}
