//! Thermal-aware VM placement — the management application that motivates
//! temperature prediction ("minimizing temperature distribution disparity
//! … to reduce the probability of hotspot occurrence").
//!
//! A stream of VMs arrives at a 6-server cluster. Two placement policies
//! compete:
//!
//! - **round-robin** — placement ignores temperature;
//! - **thermal-aware** — each VM goes to the server whose *predicted*
//!   post-placement ψ_stable is lowest ([`PlacementAdvisor`]).
//!
//! After the cluster settles we compare the hottest server and the spread
//! between hottest and coolest.
//!
//! Run with: `cargo run --release --example thermal_aware_placement`

use vmtherm::core::manager::PlacementAdvisor;
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::experiment::{ConfigSnapshot, VmInfo};
use vmtherm::sim::workload::TaskProfile;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, ServerId, ServerSpec, SimDuration, SimTime,
    Simulation, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::Celsius;

const SERVERS: usize = 6;
const AMBIENT: f64 = 24.0;

/// The VM arrival stream: deliberately heterogeneous.
fn arrivals() -> Vec<VmSpec> {
    let tasks = [
        TaskProfile::CpuBound,
        TaskProfile::CpuBound,
        TaskProfile::WebServer,
        TaskProfile::MemoryBound,
        TaskProfile::CpuBound,
        TaskProfile::Idle,
        TaskProfile::Bursty,
        TaskProfile::CpuBound,
        TaskProfile::Mixed,
        TaskProfile::CpuBound,
        TaskProfile::WebServer,
        TaskProfile::CpuBound,
    ];
    tasks
        .iter()
        .enumerate()
        .map(|(i, t)| VmSpec::new(format!("vm-{i}"), if i % 3 == 0 { 4 } else { 2 }, 4.0, *t))
        .collect()
}

/// Fan counts per server: the fleet's cooling is heterogeneous (older
/// chassis have fewer working fans) — exactly where temperature-blind
/// placement goes wrong.
const FANS: [u32; SERVERS] = [2, 2, 3, 4, 5, 6];

fn build_cluster(seed: u64) -> Simulation {
    let mut dc = Datacenter::new();
    for (i, fans) in FANS.iter().enumerate() {
        dc.add_server(
            ServerSpec::commodity(format!("node-{i}"), 16, 2.4, 64.0, *fans),
            Celsius::new(AMBIENT),
            seed + i as u64,
        );
    }
    Simulation::new(dc, AmbientModel::Fixed(AMBIENT), seed)
}

/// Runs a placement policy and returns (hottest, spread) after settling.
fn run_policy(mut choose: impl FnMut(&Simulation, &VmSpec) -> ServerId, seed: u64) -> (f64, f64) {
    let mut sim = build_cluster(seed);
    for spec in arrivals() {
        let target = choose(&sim, &spec);
        sim.boot_vm_now(target, spec).expect("placement failed");
    }
    sim.run_until(SimTime::from_secs(1200));
    let temps: Vec<f64> = sim
        .datacenter()
        .iter()
        .map(|s| s.die_temperature())
        .collect();
    let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let coolest = temps.iter().copied().fold(f64::INFINITY, f64::min);
    (hottest, hottest - coolest)
}

fn main() {
    // Train the stable model that powers the advisor.
    println!("training stable model (80 experiments)...");
    let mut generator = CaseGenerator::new(5);
    let configs: Vec<_> = generator
        .random_cases(80, 300)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let outcomes = run_experiments(&configs);
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    let model = StablePredictor::fit(&outcomes, &options).expect("training failed");
    let advisor = PlacementAdvisor::new(model);

    // Policy 1: round-robin.
    let mut rr_next = 0usize;
    let (rr_hot, rr_spread) = run_policy(
        move |_, _| {
            let id = ServerId::new(rr_next % SERVERS);
            rr_next += 1;
            id
        },
        100,
    );

    // Policy 2: thermal-aware via predicted post-placement ψ_stable.
    let (ta_hot, ta_spread) = run_policy(
        |sim, spec| {
            let candidates: Vec<ConfigSnapshot> = (0..SERVERS)
                .map(|i| ConfigSnapshot::capture(sim, ServerId::new(i), Celsius::new(AMBIENT)))
                .collect();
            let vm = VmInfo {
                vcpus: spec.vcpus(),
                memory_gb: spec.memory_gb(),
                task: spec.task(),
            };
            let (best, _) = advisor.best(&candidates, &vm).expect("candidates");
            ServerId::new(best)
        },
        100,
    );

    println!(
        "\nplacing {} heterogeneous VMs on {SERVERS} servers:",
        arrivals().len()
    );
    println!("policy          hottest server   hot-cold spread");
    println!("round-robin     {rr_hot:>10.2} C   {rr_spread:>11.2} C");
    println!("thermal-aware   {ta_hot:>10.2} C   {ta_spread:>11.2} C");
    if ta_hot <= rr_hot {
        println!(
            "\nthermal-aware placement lowered the hottest server by {:.2} C",
            rr_hot - ta_hot
        );
    } else {
        println!("\nnote: round-robin happened to win on this arrival stream");
    }
}
