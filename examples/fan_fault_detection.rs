//! Thermal anomaly detection: catching a silent fan failure from
//! temperature alone.
//!
//! A server's BMC believes all 4 fans are healthy, but two of them stop
//! mid-run. No configuration input of Eq. (2) changes — yet the CPU runs
//! hotter than the model predicts for that configuration. The
//! [`ThermalWatchdog`] (CUSUM over prediction residuals) and the
//! [`NoveltyDetector`] (one-class SVM over predicted-vs-observed pairs)
//! both flag the fault; a healthy control run stays quiet.
//!
//! Run with: `cargo run --release --example fan_fault_detection`

use vmtherm::core::anomaly::{NoveltyDetector, ResidualDetector, ThermalWatchdog};
use vmtherm::core::stable::{run_experiments, StablePredictor, TrainingOptions};
use vmtherm::sim::experiment::ConfigSnapshot;
use vmtherm::sim::{
    AmbientModel, CaseGenerator, Datacenter, Event, ServerSpec, SimDuration, SimTime, Simulation,
    TaskProfile, VmSpec,
};
use vmtherm::svm::kernel::Kernel;
use vmtherm::svm::svr::SvrParams;
use vmtherm::units::Celsius;

const AMBIENT: f64 = 24.0;

/// Runs a server for `total` seconds, failing `failed_fans` fans at
/// t = 900 s, and returns (snapshot, per-window mean sensor temps).
fn run_server(failed_fans: u32, seed: u64) -> (ConfigSnapshot, Vec<(f64, f64)>) {
    let mut dc = Datacenter::new();
    let sid = dc.add_server(ServerSpec::standard("watched"), Celsius::new(AMBIENT), seed);
    let mut sim = Simulation::new(dc, AmbientModel::Fixed(AMBIENT), seed);
    for i in 0..5 {
        let task = if i % 2 == 0 {
            TaskProfile::CpuBound
        } else {
            TaskProfile::Mixed
        };
        sim.boot_vm_now(sid, VmSpec::new(format!("vm-{i}"), 2, 4.0, task))
            .expect("boot");
    }
    let snapshot = ConfigSnapshot::capture(&sim, sid, Celsius::new(AMBIENT));
    if failed_fans > 0 {
        sim.schedule(
            SimTime::from_secs(900),
            Event::FailFans {
                server: sid,
                count: failed_fans,
            },
        );
    }
    sim.run_until(SimTime::from_secs(3000));
    // Settled windows of 120 s, starting after the initial warm-up.
    let series = &sim.trace(sid).expect("trace").sensor_c;
    let windows: Vec<(f64, f64)> = (600..3000)
        .step_by(120)
        .map(|start| {
            let mean = series
                .iter()
                .filter(|(t, _)| *t >= start as f64 && *t < (start + 120) as f64)
                .map(|(_, v)| v)
                .sum::<f64>()
                / 120.0;
            (start as f64, mean)
        })
        .collect();
    (snapshot, windows)
}

fn main() {
    println!("training stable model and detectors (100 healthy experiments)...");
    let mut generator = CaseGenerator::new(31);
    let configs: Vec<_> = generator
        .random_cases(100, 600)
        .into_iter()
        .map(|c| c.with_duration(SimDuration::from_secs(1200)))
        .collect();
    let healthy = run_experiments(&configs);
    let options = TrainingOptions::new().with_params(
        SvrParams::new()
            .with_c(128.0)
            .with_epsilon(0.05)
            .with_kernel(Kernel::rbf(0.02)),
    );
    let model = StablePredictor::fit(&healthy, &options).expect("training");
    let novelty = NoveltyDetector::fit(model.clone(), &healthy, 0.1).expect("novelty training");

    for (label, failed) in [("healthy control", 0u32), ("2-fan failure at t=900s", 2)] {
        println!("\n=== scenario: {label} ===");
        let (snapshot, windows) = run_server(failed, 77);
        let predicted = model.predict(&snapshot);
        println!("model prediction for this configuration: {predicted:.1} C");
        let mut watchdog = ThermalWatchdog::new(
            model.clone(),
            ResidualDetector::new(8.0, 0.8).expect("detector"),
        );
        let mut alarmed_at: Option<f64> = None;
        println!("   t | window mean | residual | cusum | novelty");
        for (t, mean) in &windows {
            let alarm = watchdog.observe(&snapshot, Celsius::new(*mean));
            let novel = novelty.is_anomalous(&snapshot, Celsius::new(*mean));
            println!(
                "{:>5} | {:>9.2} C | {:>+7.2} | {:>5.1} | {}",
                *t as u64,
                mean,
                mean - predicted,
                watchdog.detector().hot_score(),
                if novel { "ANOMALOUS" } else { "ok" }
            );
            if let (Some(a), None) = (alarm, alarmed_at) {
                alarmed_at = Some(*t);
                println!(
                    "      >>> WATCHDOG ALARM: {:?} (score {:.1}) <<<",
                    a.kind, a.score
                );
            }
        }
        match alarmed_at {
            Some(t) if failed > 0 => {
                println!(
                    "fault injected at 900 s, detected at {t} s — latency {} s",
                    t - 900.0
                );
            }
            Some(t) => println!("FALSE ALARM at {t} s on the healthy run"),
            None if failed > 0 => println!("MISSED the injected fault"),
            None => println!("healthy run: no alarms, as expected"),
        }
    }
}
